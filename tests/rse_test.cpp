// Reed-Solomon erasure coder tests: the MDS property over parameterized
// (k, parities, erasure-pattern) sweeps, systematic behaviour, and error
// handling.
#include <gtest/gtest.h>

#include "common/ensure.h"
#include "common/rng.h"
#include "fec/rse.h"

namespace rekey::fec {
namespace {

std::vector<Bytes> random_block(int k, std::size_t len, Rng& rng) {
  std::vector<Bytes> data(static_cast<std::size_t>(k));
  for (auto& pkt : data) {
    pkt.resize(len);
    for (auto& b : pkt) b = static_cast<std::uint8_t>(rng.next_in(0, 255));
  }
  return data;
}

TEST(Rse, NoLossDecodeIsIdentity) {
  Rng rng(1);
  const RseCoder coder(5);
  const auto data = random_block(5, 64, rng);
  std::vector<Shard> shards;
  for (int i = 0; i < 5; ++i) shards.push_back({i, data[i]});
  const auto out = coder.decode(shards);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, data);
}

TEST(Rse, SingleErasureSingleParity) {
  Rng rng(2);
  const RseCoder coder(4);
  const auto data = random_block(4, 32, rng);
  const Bytes parity = coder.encode_one(data, 0);
  std::vector<Shard> shards{{0, data[0]}, {2, data[2]}, {3, data[3]},
                            {4, parity}};  // data[1] erased
  const auto out = coder.decode(shards);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, data);
}

TEST(Rse, AllDataErasedAllParity) {
  Rng rng(3);
  const RseCoder coder(6);
  const auto data = random_block(6, 48, rng);
  std::vector<Shard> shards;
  for (int p = 0; p < 6; ++p) shards.push_back({6 + p, coder.encode_one(data, p)});
  const auto out = coder.decode(shards);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, data);
}

TEST(Rse, InsufficientShardsReturnsNullopt) {
  Rng rng(4);
  const RseCoder coder(5);
  const auto data = random_block(5, 16, rng);
  std::vector<Shard> shards{{0, data[0]}, {1, data[1]}};
  EXPECT_FALSE(coder.decode(shards).has_value());
}

TEST(Rse, DuplicateShardsDoNotHelp) {
  Rng rng(5);
  const RseCoder coder(3);
  const auto data = random_block(3, 16, rng);
  std::vector<Shard> shards{{0, data[0]}, {0, data[0]}, {1, data[1]}};
  EXPECT_FALSE(coder.decode(shards).has_value());
}

TEST(Rse, ExtraShardsIgnored) {
  Rng rng(6);
  const RseCoder coder(3);
  const auto data = random_block(3, 16, rng);
  std::vector<Shard> shards;
  for (int i = 0; i < 3; ++i) shards.push_back({i, data[i]});
  for (int p = 0; p < 4; ++p) shards.push_back({3 + p, coder.encode_one(data, p)});
  const auto out = coder.decode(shards);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, data);
}

TEST(Rse, ParityIndexSpaceBounds) {
  const RseCoder coder(10);
  EXPECT_EQ(coder.max_parity(), 246);
  Rng rng(7);
  const auto data = random_block(10, 8, rng);
  EXPECT_NO_THROW(coder.encode_one(data, 245));
  EXPECT_THROW(coder.encode_one(data, 246), EnsureError);
  EXPECT_THROW(coder.encode_one(data, -1), EnsureError);
}

TEST(Rse, UnequalPacketSizesRejected) {
  const RseCoder coder(2);
  std::vector<Bytes> data{Bytes(8, 1), Bytes(9, 2)};
  EXPECT_THROW(coder.encode_one(data, 0), EnsureError);
}

TEST(Rse, BlockSizeBounds) {
  EXPECT_THROW(RseCoder(0), EnsureError);
  EXPECT_THROW(RseCoder(129), EnsureError);
  EXPECT_NO_THROW(RseCoder(128));
}

TEST(Rse, EncodeRangeMatchesEncodeOne) {
  Rng rng(8);
  const RseCoder coder(4);
  const auto data = random_block(4, 24, rng);
  const auto batch = coder.encode(data, 3, 5);
  ASSERT_EQ(batch.size(), 5u);
  for (int j = 0; j < 5; ++j)
    EXPECT_EQ(batch[static_cast<std::size_t>(j)], coder.encode_one(data, 3 + j));
}

TEST(Rse, K1ParityIsCopyUpToScale) {
  // With k=1 any parity must decode back to the single data packet.
  Rng rng(9);
  const RseCoder coder(1);
  const auto data = random_block(1, 16, rng);
  const Bytes parity = coder.encode_one(data, 7);
  std::vector<Shard> shards{{1 + 7, parity}};
  const auto out = coder.decode(shards);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ((*out)[0], data[0]);
}

// The MDS property: ANY k-subset of data+parity reconstructs. Sweep block
// size and parity count; for each, try many random erasure patterns.
struct MdsCase {
  int k;
  int parities;
  std::size_t len;
};

class MdsSweep : public ::testing::TestWithParam<MdsCase> {};

TEST_P(MdsSweep, AnyKSubsetDecodes) {
  const auto [k, parities, len] = GetParam();
  Rng rng(static_cast<std::uint64_t>(k * 1000 + parities));
  const RseCoder coder(k);
  const auto data = random_block(k, len, rng);

  std::vector<Shard> all;
  for (int i = 0; i < k; ++i) all.push_back({i, data[i]});
  for (int p = 0; p < parities; ++p)
    all.push_back({k + p, coder.encode_one(data, p)});

  const int n = k + parities;
  for (int trial = 0; trial < 40; ++trial) {
    // Random k-subset of the n shards.
    std::vector<std::uint64_t> pick =
        rng.sample_without_replacement(static_cast<std::uint64_t>(n),
                                       static_cast<std::uint64_t>(k));
    std::vector<Shard> subset;
    for (const auto i : pick) subset.push_back(all[i]);
    const auto out = coder.decode(subset);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(*out, data);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MdsSweep,
    ::testing::Values(MdsCase{1, 3, 16}, MdsCase{2, 2, 33},
                      MdsCase{5, 5, 64}, MdsCase{10, 10, 128},
                      MdsCase{10, 40, 32}, MdsCase{30, 10, 64},
                      MdsCase{50, 6, 100}, MdsCase{64, 64, 20}));

}  // namespace
}  // namespace rekey::fec
