// Every bench binary accepts --json and emits a schema-stable document:
// run each one in smoke mode and validate the figure JSON it writes.
//
// REKEY_BENCH_DIR is injected by tests/CMakeLists.txt and points at the
// directory holding the built bench binaries.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.h"

namespace rekey {
namespace {

struct BenchBinary {
  const char* name;    // executable name under REKEY_BENCH_DIR
  const char* figure;  // expected "figure" field
};

constexpr BenchBinary kBenches[] = {
    {"bench_f06_enc_packets", "F6"},
    {"bench_f07_duplication", "F7"},
    {"bench_f08_blocksize", "F8"},
    {"bench_f09_rho_nacks", "F9"},
    {"bench_f10_rho_latency", "F10"},
    {"bench_f12_adjustrho_trace", "F12"},
    {"bench_f13_nack_trace", "F13"},
    {"bench_f14_numnack_control", "F14"},
    {"bench_f15_blocksize_nacks", "F15"},
    {"bench_f16_blocksize_bw", "F16"},
    {"bench_f17_blocksize_rounds", "F17"},
    {"bench_f18_numnack_cost", "F18"},
    {"bench_f19_adaptive_overhead", "F19"},
    {"bench_f20_adaptive_overhead_n", "F20"},
    {"bench_f21_deadline_unicast", "F21"},
    {"bench_a1_cost_model", "A1"},
    {"bench_a2_nack_model", "A2"},
    {"bench_a3_scalability", "A3"},
    {"bench_a4_micro", "A4"},
    {"bench_ab1_assignment", "AB1"},
    {"bench_ab2_batching", "AB2"},
    {"bench_ab3_interleave", "AB3"},
    {"bench_ab4_degree", "AB4"},
    {"bench_ab5_unicast_switch", "AB5"},
    {"bench_ab6_eager", "AB6"},
    {"bench_r1_degraded", "R1"},
    {"bench_ks1_server_throughput", "KS1"},
    {"bench_w1_wire_throughput", "W1"},
    {"bench_r2_failover", "R2"},
};

Json run_bench(const BenchBinary& bench) {
  const std::string out =
      testing::TempDir() + "bench_json_" + bench.name + ".json";
  const std::string cmd = std::string(REKEY_BENCH_DIR) + "/" + bench.name +
                          " --smoke --json " + out + " > /dev/null 2>&1";
  const int rc = std::system(cmd.c_str());
  EXPECT_EQ(rc, 0) << cmd;

  std::ifstream in(out);
  EXPECT_TRUE(in.good()) << out;
  std::ostringstream buf;
  buf << in.rdbuf();
  std::remove(out.c_str());

  auto doc = Json::parse(buf.str());
  EXPECT_TRUE(doc.has_value()) << bench.name << ": unparseable JSON";
  return doc.value_or(Json());
}

void validate_schema(const BenchBinary& bench, const Json& doc) {
  SCOPED_TRACE(bench.name);
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("schema_version").as_int(), 1);
  EXPECT_EQ(doc.at("figure").as_string(), bench.figure);
  EXPECT_TRUE(doc.at("smoke").as_bool());

  const Json& sections = doc.at("sections");
  ASSERT_TRUE(sections.is_array());
  ASSERT_GT(sections.size(), 0u) << "no sections captured";
  for (const Json& section : sections.as_array()) {
    ASSERT_TRUE(section.is_object());
    EXPECT_FALSE(section.at("id").as_string().empty());
    const Json& columns = section.at("columns");
    const Json& rows = section.at("rows");
    ASSERT_TRUE(columns.is_array());
    ASSERT_TRUE(rows.is_array());
    ASSERT_GT(columns.size(), 0u);
    ASSERT_GT(rows.size(), 0u) << section.at("id").as_string();
    for (const Json& row : rows.as_array()) {
      ASSERT_TRUE(row.is_array());
      EXPECT_EQ(row.size(), columns.size())
          << "row arity mismatch in " << section.at("id").as_string();
      for (const Json& cell : row.as_array())
        EXPECT_TRUE(cell.is_number() || cell.is_string());
    }
  }

  const Json& seeds = doc.at("seeds");
  ASSERT_TRUE(seeds.is_array());
  for (const Json& seed : seeds.as_array()) {
    ASSERT_TRUE(seed.is_string());
    EXPECT_EQ(seed.as_string().substr(0, 2), "0x");
    EXPECT_EQ(seed.as_string().size(), 18u);  // 0x + 16 hex digits
  }

  const Json& notes = doc.at("notes");
  ASSERT_TRUE(notes.is_array());
  for (const Json& note : notes.as_array()) EXPECT_TRUE(note.is_string());
}

class BenchJson : public testing::TestWithParam<BenchBinary> {};

TEST_P(BenchJson, EmitsSchemaStableDocument) {
  const BenchBinary& bench = GetParam();
  validate_schema(bench, run_bench(bench));
}

INSTANTIATE_TEST_SUITE_P(AllFigures, BenchJson, testing::ValuesIn(kBenches),
                         [](const testing::TestParamInfo<BenchBinary>& info) {
                           return std::string(info.param.name);
                         });

}  // namespace
}  // namespace rekey
