// Work-stealing thread pool tests: full index coverage for serial and
// parallel configurations, exception propagation, the REKEY_THREADS
// environment override, and worker CPU pinning (REKEY_PIN).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/env.h"
#include "common/parallel.h"

namespace rekey {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.size(), threads);
    std::vector<std::atomic<int>> hits(257);
    pool.for_each_index(hits.size(),
                        [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(3);
  std::atomic<std::size_t> total{0};
  for (int call = 0; call < 5; ++call)
    pool.for_each_index(100, [&](std::size_t i) { total.fetch_add(i); });
  EXPECT_EQ(total.load(), 5u * (99u * 100u / 2u));
}

TEST(ThreadPool, ZeroTasksIsANoOp) {
  ThreadPool pool(2);
  pool.for_each_index(0, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPool, PropagatesFirstException) {
  for (const unsigned threads : {1u, 4u}) {
    ThreadPool pool(threads);
    std::atomic<int> ran{0};
    EXPECT_THROW(pool.for_each_index(64,
                                     [&](std::size_t i) {
                                       ran.fetch_add(1);
                                       if (i == 13)
                                         throw std::runtime_error("boom");
                                     }),
                 std::runtime_error);
    // The pool must drain before rethrowing so it stays usable.
    pool.for_each_index(8, [&](std::size_t) { ran.fetch_add(1); });
  }
}

TEST(ThreadPool, ResultsIndependentOfThreadCount) {
  auto compute = [](unsigned threads) {
    std::vector<std::uint64_t> out(200);
    parallel_for_each_index(
        out.size(),
        [&](std::size_t i) {
          std::uint64_t x = i + 1;
          for (int k = 0; k < 1000; ++k) x = x * 6364136223846793005ULL + 1;
          out[i] = x;
        },
        threads);
    return out;
  };
  const auto serial = compute(1);
  EXPECT_EQ(serial, compute(2));
  EXPECT_EQ(serial, compute(7));
}

TEST(ThreadPoolPinning, CpuOrderCoversAllowedCpusOnce) {
  const std::vector<int> order = pinning_cpu_order();
#ifdef __linux__
  ASSERT_FALSE(order.empty());
  // Every allowed CPU exactly once, whatever the topology interleave.
  std::vector<int> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
              sorted.end());
  for (const int c : order) EXPECT_GE(c, 0);
#else
  EXPECT_TRUE(order.empty());
#endif
}

TEST(ThreadPoolPinning, ExplicitPinAppliesToEveryWorker) {
  ::unsetenv("REKEY_PIN");
  ThreadPool unpinned(4, 0);
  EXPECT_EQ(unpinned.pinned_workers(), 0u);

  ThreadPool pinned(4, 1);
#ifdef __linux__
  EXPECT_EQ(pinned.pinned_workers(), 4u);
#else
  EXPECT_EQ(pinned.pinned_workers(), 0u);
#endif
  // A pinned pool still runs every index exactly once.
  std::vector<std::atomic<int>> hits(100);
  pinned.for_each_index(hits.size(),
                        [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);

  // Inline single-thread pools have no workers to pin.
  ThreadPool inline_pool(1, 1);
  EXPECT_EQ(inline_pool.pinned_workers(), 0u);
}

TEST(ThreadPoolPinning, HonoursEnvironmentDefault) {
  ::unsetenv("REKEY_PIN");
  EXPECT_FALSE(pin_by_default());
  ::setenv("REKEY_PIN", "1", 1);
  EXPECT_TRUE(pin_by_default());
#ifdef __linux__
  ThreadPool pool(2);  // pin = -1: consult REKEY_PIN
  EXPECT_EQ(pool.pinned_workers(), 2u);
#endif
  ::setenv("REKEY_PIN", "0", 1);
  EXPECT_FALSE(pin_by_default());
  ::unsetenv("REKEY_PIN");
  env::reset_warnings_for_test();
}

TEST(DefaultThreadCount, HonoursEnvironmentOverride) {
  ::setenv("REKEY_THREADS", "3", 1);
  EXPECT_EQ(default_thread_count(), 3u);
  ::setenv("REKEY_THREADS", "0", 1);  // 0 means serial: clamps to 1
  EXPECT_EQ(default_thread_count(), 1u);
  ::unsetenv("REKEY_THREADS");
  EXPECT_GE(default_thread_count(), 1u);
}

TEST(DefaultThreadCount, GarbageOverrideWarnsAndFallsBack) {
  ::unsetenv("REKEY_THREADS");
  const unsigned fallback = default_thread_count();  // hardware default

  // Non-numeric, negative, trailing junk, and overflowing values must all
  // behave exactly like an unset variable (plus one stderr warning) — not
  // like 0 workers, not like LLONG_MAX workers.
  for (const char* bad :
       {"abc", "-3", "12abc", "", "99999999999999999999", "4097"}) {
    ::setenv("REKEY_THREADS", bad, 1);
    env::reset_warnings_for_test();
    ::testing::internal::CaptureStderr();
    EXPECT_EQ(default_thread_count(), fallback) << "REKEY_THREADS=" << bad;
    const std::string err = ::testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("REKEY_THREADS"), std::string::npos)
        << "no warning for REKEY_THREADS=" << bad;
  }

  // The warning fires once per process, not once per query.
  ::setenv("REKEY_THREADS", "junk", 1);
  env::reset_warnings_for_test();
  ::testing::internal::CaptureStderr();
  (void)default_thread_count();
  (void)default_thread_count();
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(err.find("REKEY_THREADS"), err.rfind("REKEY_THREADS")) << err;

  ::unsetenv("REKEY_THREADS");
  env::reset_warnings_for_test();
}

}  // namespace
}  // namespace rekey
