// Server transport and AdjustRho controller tests (paper Figs 2, 11, 26).
#include <gtest/gtest.h>

#include <set>

#include "common/ensure.h"
#include "transport/server.h"
#include "transport/workload.h"

namespace rekey::transport {
namespace {

GeneratedMessage small_message(std::uint64_t seed = 1) {
  WorkloadConfig wc;
  wc.group_size = 256;
  wc.leaves = 64;
  return generate_message(wc, seed, 1);
}

ProtocolConfig config_k(std::size_t k) {
  ProtocolConfig cfg;
  cfg.block_size = k;
  return cfg;
}

TEST(ServerTransport, Round1CarriesAllSlotsPlusProactiveParities) {
  const auto msg = small_message();
  const auto cfg = config_k(10);
  ServerTransport s(cfg, msg.payload, msg.assignment, /*proactive=*/3, 1);
  auto wires = s.round_packets(1);
  EXPECT_EQ(wires.size(), s.num_slots() + 3 * s.num_blocks());
  // Count types.
  std::size_t enc = 0, parity = 0;
  for (const auto& w : wires) {
    const auto t = packet::peek_type(w);
    enc += t == packet::PacketType::Enc;
    parity += t == packet::PacketType::Parity;
  }
  EXPECT_EQ(enc, s.num_slots());
  EXPECT_EQ(parity, 3 * s.num_blocks());
}

TEST(ServerTransport, InterleavedSendOrder) {
  const auto msg = small_message();
  auto cfg = config_k(10);
  cfg.interleave = true;
  ServerTransport s(cfg, msg.payload, msg.assignment, 0, 1);
  const auto wires = s.round_packets(1);
  // First num_blocks packets must be seq 0 of blocks 0, 1, 2, ...
  for (std::size_t b = 0; b < s.num_blocks(); ++b) {
    const auto h = packet::parse_enc_header(wires[b]);
    ASSERT_TRUE(h.has_value());
    EXPECT_EQ(h->block_id, b);
    EXPECT_EQ(h->seq, 0);
  }
}

TEST(ServerTransport, SequentialSendOrder) {
  const auto msg = small_message();
  auto cfg = config_k(10);
  cfg.interleave = false;
  ServerTransport s(cfg, msg.payload, msg.assignment, 0, 1);
  const auto wires = s.round_packets(1);
  for (std::size_t i = 0; i < cfg.block_size; ++i) {
    const auto h = packet::parse_enc_header(wires[i]);
    ASSERT_TRUE(h.has_value());
    EXPECT_EQ(h->block_id, 0);
    EXPECT_EQ(h->seq, i);
  }
}

TEST(ServerTransport, ReactiveRoundHonoursAmax) {
  const auto msg = small_message();
  const auto cfg = config_k(2);  // small k so the message spans blocks
  ServerTransport s(cfg, msg.payload, msg.assignment, 0, 1);
  ASSERT_GE(s.num_blocks(), 2u);
  s.round_packets(1);
  s.accept_nack(4, {{3, 0}});
  s.accept_nack(5, {{1, 0}, {2, 1}});
  const auto wires = s.round_packets(2);
  // amax[0] = 3, amax[1] = 2 -> 5 parity packets.
  EXPECT_EQ(wires.size(), 5u);
  std::map<std::uint16_t, int> per_block;
  std::set<int> seqs;
  for (const auto& w : wires) {
    const auto h = packet::parse_parity_header(w);
    ASSERT_TRUE(h.has_value());
    ++per_block[h->block_id];
  }
  EXPECT_EQ(per_block[0], 3);
  EXPECT_EQ(per_block[1], 2);
  // amax resets: an empty follow-up round.
  EXPECT_TRUE(s.round_packets(3).empty());
}

TEST(ServerTransport, FreshParityIndicesAcrossRounds) {
  const auto msg = small_message();
  const auto cfg = config_k(10);
  ServerTransport s(cfg, msg.payload, msg.assignment, 2, 1);
  std::set<int> seen;
  for (const auto& w : s.round_packets(1)) {
    const auto h = packet::parse_parity_header(w);
    if (!h || h->block_id != 0) continue;
    EXPECT_TRUE(seen.insert(h->parity_seq).second);
  }
  s.accept_nack(1, {{4, 0}});
  for (const auto& w : s.round_packets(2)) {
    const auto h = packet::parse_parity_header(w);
    if (!h || h->block_id != 0) continue;
    EXPECT_TRUE(seen.insert(h->parity_seq).second)
        << "parity index reused across rounds";
  }
  EXPECT_EQ(seen.size(), 6u);  // 2 proactive + 4 reactive
}

TEST(ServerTransport, FeedbackCollectsPerNackMaxima) {
  const auto msg = small_message();
  const auto cfg = config_k(10);
  ServerTransport s(cfg, msg.payload, msg.assignment, 0, 1);
  s.round_packets(1);
  s.accept_nack(0, {{2, 0}, {7, 1}});
  s.accept_nack(1, {{1, 1}});
  auto fb = s.take_feedback();
  std::sort(fb.begin(), fb.end());
  EXPECT_EQ(fb, (std::vector<std::uint8_t>{1, 7}));
  EXPECT_TRUE(s.take_feedback().empty());  // consumed
  EXPECT_EQ(s.straggler_set(), (std::set<std::size_t>{0, 1}));
}

TEST(ServerTransport, NackForUnknownBlockIgnoredButCounted) {
  // Appendix-D range estimates can exceed the real block count; such
  // entries produce no parities but the NACK still registers.
  const auto msg = small_message();
  const auto cfg = config_k(10);
  ServerTransport s(cfg, msg.payload, msg.assignment, 0, 1);
  s.round_packets(1);
  s.accept_nack(0, {{1, static_cast<std::uint16_t>(s.num_blocks() + 5)}});
  EXPECT_EQ(s.straggler_set().size(), 1u);
  EXPECT_TRUE(s.round_packets(2).empty());  // no amax was set
}

TEST(ServerTransport, UsrForCarriesExactNeeds) {
  const auto msg = small_message();
  const auto cfg = config_k(10);
  ServerTransport s(cfg, msg.payload, msg.assignment, 0, 1);
  const auto& [user, needs] = *msg.payload.user_needs.begin();
  const auto usr = s.usr_for(static_cast<std::uint16_t>(user));
  EXPECT_EQ(usr.new_user_id, user);
  EXPECT_EQ(usr.max_kid, msg.payload.max_kid);
  ASSERT_EQ(usr.entries.size(), needs.size());
  for (std::size_t i = 0; i < needs.size(); ++i)
    EXPECT_EQ(usr.entries[i].enc_id, msg.payload.encryptions[needs[i]].enc_id);
}

TEST(ServerTransport, UsrForUnknownUserThrows) {
  const auto msg = small_message();
  const auto cfg = config_k(10);
  ServerTransport s(cfg, msg.payload, msg.assignment, 0, 1);
  EXPECT_THROW(s.usr_for(1), EnsureError);  // id 1 is a k-node, not a user
}

TEST(ServerTransport, EmptyAssignmentRejected) {
  const auto msg = small_message();
  const auto cfg = config_k(10);
  packet::Assignment empty;
  EXPECT_THROW(ServerTransport(cfg, msg.payload, empty, 0, 1), EnsureError);
}

TEST(RhoController, InitialRhoQuantizesToParities) {
  ProtocolConfig cfg;
  cfg.block_size = 10;
  cfg.initial_rho = 1.0;
  EXPECT_EQ(RhoController(cfg, 1).proactive_parities(), 0);
  cfg.initial_rho = 1.6;
  EXPECT_EQ(RhoController(cfg, 1).proactive_parities(), 6);
  cfg.initial_rho = 2.0;
  RhoController c(cfg, 1);
  EXPECT_EQ(c.proactive_parities(), 10);
  EXPECT_DOUBLE_EQ(c.rho(), 2.0);
}

TEST(RhoController, IncreaseUsesNumNackPlusOneLargest) {
  ProtocolConfig cfg;
  cfg.block_size = 10;
  cfg.num_nack_target = 2;
  RhoController c(cfg, 1);
  // 5 NACKs requesting {9, 7, 4, 2, 1}: a[numNACK] = a[2] = 4.
  c.on_round1_feedback({9, 7, 4, 2, 1});
  EXPECT_EQ(c.proactive_parities(), 4);
  EXPECT_DOUBLE_EQ(c.rho(), 1.4);
}

TEST(RhoController, AtTargetNoChange) {
  ProtocolConfig cfg;
  cfg.block_size = 10;
  cfg.num_nack_target = 3;
  cfg.initial_rho = 1.5;
  RhoController c(cfg, 1);
  c.on_round1_feedback({1, 1, 1});  // exactly numNACK
  EXPECT_EQ(c.proactive_parities(), 5);
}

TEST(RhoController, DecreaseIsProbabilisticAndBounded) {
  ProtocolConfig cfg;
  cfg.block_size = 10;
  cfg.num_nack_target = 20;
  cfg.initial_rho = 1.5;
  RhoController c(cfg, 7);
  // Zero NACKs: decrease probability 1 -> one parity per message.
  for (int i = 0; i < 5; ++i) c.on_round1_feedback({});
  EXPECT_EQ(c.proactive_parities(), 0);
  for (int i = 0; i < 5; ++i) c.on_round1_feedback({});
  EXPECT_EQ(c.proactive_parities(), 0);  // floored
  EXPECT_DOUBLE_EQ(c.rho(), 1.0);
}

TEST(RhoController, HalfTargetDecreasesSometimes) {
  ProtocolConfig cfg;
  cfg.block_size = 10;
  cfg.num_nack_target = 20;
  cfg.initial_rho = 3.0;
  RhoController c(cfg, 11);
  // |A| = 5 -> decrease prob (20-10)/20 = 0.5. Starting from 20 proactive
  // parities, 30 trials at p=0.5 should shed well over 5 but (with high
  // probability) not all 20.
  int before = c.proactive_parities();
  ASSERT_EQ(before, 20);
  int decreases = 0;
  for (int i = 0; i < 30; ++i) {
    c.on_round1_feedback({1, 1, 1, 1, 1});
    decreases += before - c.proactive_parities();
    before = c.proactive_parities();
  }
  EXPECT_GT(decreases, 5);
  EXPECT_LE(decreases, 20);
}

TEST(RhoController, ZeroTargetNeverDecreases) {
  ProtocolConfig cfg;
  cfg.block_size = 10;
  cfg.num_nack_target = 0;
  cfg.initial_rho = 1.3;
  RhoController c(cfg, 1);
  c.on_round1_feedback({});
  EXPECT_EQ(c.proactive_parities(), 3);
  c.on_round1_feedback({5});  // any NACK with target 0 raises
  EXPECT_EQ(c.proactive_parities(), 8);
}

TEST(RhoController, InitialRhoClampedToCodeSpace) {
  // Regression: the constructor path used to quantize initial_rho into
  // proactive parities without the cap that bounds the feedback path, so
  // a large initial_rho drove wire parity_seq past the uint8_t range.
  ProtocolConfig cfg;
  cfg.block_size = 100;
  cfg.initial_rho = 50.0;  // naive quantization: 4900 parities
  RhoController c(cfg, 1);
  EXPECT_LE(c.proactive_parities(), 256 - 2 * 100);
  EXPECT_EQ(c.proactive_parities(), 56);
}

TEST(ServerTransport, RejectsParitiesBeyondCodeSpace) {
  // Regression: parity sequence numbers are uint8_t on the wire; asking
  // for more parities than the RSE code supports must fail loudly instead
  // of silently truncating parity_seq.
  const auto msg = small_message();
  const auto cfg = config_k(10);  // max_parity = 246
  EXPECT_THROW(ServerTransport(cfg, msg.payload, msg.assignment, 300, 1),
               EnsureError);
  // At the cap itself, round 1 emits every parity with a distinct,
  // in-range sequence number.
  ServerTransport ok(cfg, msg.payload, msg.assignment, 246, 1);
  std::set<int> seqs;
  for (const auto& w : ok.round_packets(1)) {
    const auto h = packet::parse_parity_header(w);
    if (!h || h->block_id != 0) continue;
    EXPECT_LT(h->parity_seq, 246);
    EXPECT_TRUE(seqs.insert(h->parity_seq).second);
  }
  EXPECT_EQ(seqs.size(), 246u);
}

TEST(RhoController, DeadlineAdaptationOfNumNack) {
  ProtocolConfig cfg;
  cfg.num_nack_target = 20;
  cfg.max_nack = 25;
  RhoController c(cfg, 1);
  c.on_deadline_report(0);
  EXPECT_EQ(c.num_nack_target(), 21);
  for (int i = 0; i < 10; ++i) c.on_deadline_report(0);
  EXPECT_EQ(c.num_nack_target(), 25);  // capped at maxNACK
  c.on_deadline_report(7);
  EXPECT_EQ(c.num_nack_target(), 18);
  c.on_deadline_report(100);
  EXPECT_EQ(c.num_nack_target(), 0);  // floored
}

TEST(ServerTransport, StormDuplicatedNacksFoldIntoOneFeedbackEntry) {
  // NACK-storm amplification delivers the same NACK many times. The amax
  // maxima absorb redelivery by construction; the AdjustRho feedback must
  // also stay one entry per user, or a storm reads as "many users short".
  const auto msg = small_message();
  const auto cfg = config_k(10);
  ServerTransport s(cfg, msg.payload, msg.assignment, 0, 1);
  s.round_packets(1);
  for (int copy = 0; copy < 5; ++copy) s.accept_nack(0, {{2, 0}, {7, 1}});
  s.accept_nack(1, {{1, 1}});
  auto fb = s.take_feedback();
  std::sort(fb.begin(), fb.end());
  EXPECT_EQ(fb, (std::vector<std::uint8_t>{1, 7}));
  EXPECT_EQ(s.straggler_set(), (std::set<std::size_t>{0, 1}));
  // The dedup set is per round: the same user NACKing next round counts.
  s.accept_nack(0, {{3, 0}});
  EXPECT_EQ(s.take_feedback(), (std::vector<std::uint8_t>{3}));
}

TEST(RhoController, DegradedRound1SilenceSkipsBackoff) {
  // A blackout can swallow every NACK of round 1; the resulting silence
  // must not trigger the probabilistic rho back-off.
  ProtocolConfig cfg;
  cfg.block_size = 10;
  cfg.num_nack_target = 20;
  cfg.initial_rho = 1.5;
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    RhoController c(cfg, seed);
    c.on_round1_feedback({}, /*degraded=*/true);
    EXPECT_EQ(c.proactive_parities(), 5) << "seed " << seed;
  }
  // The same silence on a healthy network backs off for some seed.
  bool backed_off = false;
  for (std::uint64_t seed = 0; seed < 50 && !backed_off; ++seed) {
    RhoController c(cfg, seed);
    c.on_round1_feedback({});
    backed_off = c.proactive_parities() < 5;
  }
  EXPECT_TRUE(backed_off);
}

TEST(RhoController, DegradedEscalationClampedToOneParity) {
  // Storm-inflated or blackout-distorted feedback must creep rho up by at
  // most one parity per message instead of ratcheting to the cap.
  ProtocolConfig cfg;
  cfg.block_size = 10;
  cfg.num_nack_target = 2;
  RhoController healthy(cfg, 1);
  healthy.on_round1_feedback({9, 7, 4, 2, 1});
  EXPECT_EQ(healthy.proactive_parities(), 4);  // a[2] = 4, unclamped
  RhoController degraded(cfg, 1);
  degraded.on_round1_feedback({9, 7, 4, 2, 1}, /*degraded=*/true);
  EXPECT_EQ(degraded.proactive_parities(), 1);  // clamped to +1
  // A one-parity step stays allowed under degradation.
  RhoController small_step(cfg, 1);
  small_step.on_round1_feedback({1, 1, 1}, /*degraded=*/true);
  EXPECT_EQ(small_step.proactive_parities(), 1);
}

}  // namespace
}  // namespace rekey::transport
