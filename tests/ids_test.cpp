// Node-id arithmetic and Theorem 4.2 id re-derivation.
#include <gtest/gtest.h>

#include "common/ensure.h"
#include "keytree/ids.h"

namespace rekey::tree {
namespace {

TEST(Ids, ParentChildInverse) {
  for (const unsigned d : {2u, 3u, 4u, 8u}) {
    for (NodeId m = 0; m < 200; ++m) {
      for (unsigned j = 0; j < d; ++j) {
        const NodeId c = child_of(m, j, d);
        EXPECT_EQ(parent_of(c, d), m);
      }
    }
  }
}

TEST(Ids, PaperExampleDegree3) {
  // Figure 4 of the protocol paper: degree 3, root 0, children 1..3,
  // node 3's children are 10, 11, 12.
  EXPECT_EQ(child_of(0, 0, 3), 1u);
  EXPECT_EQ(child_of(0, 2, 3), 3u);
  EXPECT_EQ(child_of(3, 0, 3), 10u);
  EXPECT_EQ(parent_of(12, 3), 3u);
}

TEST(Ids, RootHasNoParent) {
  EXPECT_THROW(parent_of(0, 4), EnsureError);
}

TEST(Ids, Levels) {
  EXPECT_EQ(level_of(0, 4), 0u);
  for (NodeId id = 1; id <= 4; ++id) EXPECT_EQ(level_of(id, 4), 1u);
  EXPECT_EQ(level_of(5, 4), 2u);
  EXPECT_EQ(level_of(20, 4), 2u);
  EXPECT_EQ(level_of(21, 4), 3u);
}

TEST(Ids, FirstIdAtLevel) {
  EXPECT_EQ(first_id_at_level(0, 4), 0u);
  EXPECT_EQ(first_id_at_level(1, 4), 1u);
  EXPECT_EQ(first_id_at_level(2, 4), 5u);
  EXPECT_EQ(first_id_at_level(3, 4), 21u);
  EXPECT_EQ(first_id_at_level(2, 3), 4u);
}

TEST(Ids, FirstIdAtLevelMatchesLevelOf) {
  for (const unsigned d : {2u, 3u, 4u}) {
    for (unsigned l = 0; l < 8; ++l) {
      const NodeId first = first_id_at_level(l, d);
      EXPECT_EQ(level_of(first, d), l);
      if (first > 0) {
        EXPECT_EQ(level_of(first - 1, d), l - 1);
      }
    }
  }
}

TEST(Ids, PathToRoot) {
  const auto path = path_to_root(22, 4);
  EXPECT_EQ(path, (std::vector<NodeId>{22, 5, 1, 0}));
}

TEST(Ids, Ancestry) {
  EXPECT_TRUE(is_ancestor(0, 22, 4));
  EXPECT_TRUE(is_ancestor(5, 22, 4));
  EXPECT_TRUE(is_ancestor(22, 22, 4));
  EXPECT_FALSE(is_ancestor(22, 5, 4));
  EXPECT_FALSE(is_ancestor(2, 22, 4));
}

TEST(Ids, LeftmostDescendant) {
  EXPECT_EQ(leftmost_descendant(5, 0, 4), 5u);
  EXPECT_EQ(leftmost_descendant(5, 1, 4), 21u);
  EXPECT_EQ(leftmost_descendant(5, 2, 4), 85u);
  // f(x) = d^x m + (d^x - 1)/(d - 1) for d=4, m=5, x=2: 16*5 + 5 = 85.
}

TEST(Theorem42, UnchangedIdDerivesToItself) {
  // nk = 4 (d=4): user ids in (4, 20].
  for (NodeId m = 5; m <= 20; ++m)
    EXPECT_EQ(derive_new_user_id(m, 4, 4), m);
}

TEST(Theorem42, SplitUserDerivesChild) {
  // User at 5 splits when nk grows to 5: new id = 21 (= leftmost child).
  EXPECT_EQ(derive_new_user_id(5, 5, 4), 21u);
  // Two levels of splitting: nk covers 21 as a k-node too.
  EXPECT_EQ(derive_new_user_id(5, 21, 4), 85u);
}

TEST(Theorem42, UniquenessAcrossRange) {
  // For every old id and every plausible nk, at most one f(x) lies in
  // (nk, d*nk+d]; derive must return it.
  for (const unsigned d : {2u, 4u}) {
    for (NodeId m = 1; m < 100; ++m) {
      for (NodeId nk = 1; nk < 200; ++nk) {
        const auto got = derive_new_user_id(m, nk, d);
        if (!got) continue;
        int in_range = 0;
        NodeId id = m;
        for (int x = 0; x < 20; ++x) {
          if (id > nk && id <= d * nk + d) ++in_range;
          id = id * d + 1;
          if (id > d * nk + d) break;
        }
        EXPECT_EQ(in_range, 1) << "m=" << m << " nk=" << nk;
        EXPECT_GT(*got, nk);
        EXPECT_LE(*got, d * nk + d);
      }
    }
  }
}

TEST(Theorem42, NoCandidateReturnsNullopt) {
  // Old id already beyond the advertised range with no descendant inside.
  // d=4, nk=1: range (1, 8]; m=9 -> descendants 37, ... all > 8.
  EXPECT_FALSE(derive_new_user_id(9, 1, 4).has_value());
}

}  // namespace
}  // namespace rekey::tree
