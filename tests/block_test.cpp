// Block partitioning tests: slot math, last-block duplication, and the
// interleaved send order.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/ensure.h"
#include "fec/block.h"

namespace rekey::fec {
namespace {

TEST(BlockPartition, ExactMultiple) {
  const BlockPartition p(20, 10);
  EXPECT_EQ(p.num_blocks(), 2u);
  EXPECT_EQ(p.num_slots(), 20u);
  for (std::size_t b = 0; b < 2; ++b)
    for (std::size_t s = 0; s < 10; ++s) {
      const BlockSlot slot = p.slot(b, s);
      EXPECT_FALSE(slot.duplicate);
      EXPECT_EQ(slot.packet, b * 10 + s);
    }
}

TEST(BlockPartition, LastBlockDuplicates) {
  const BlockPartition p(13, 5);  // 3 blocks, last has 3 real + 2 dups
  EXPECT_EQ(p.num_blocks(), 3u);
  EXPECT_EQ(p.num_slots(), 15u);
  EXPECT_FALSE(p.slot(2, 2).duplicate);
  const BlockSlot d0 = p.slot(2, 3);
  const BlockSlot d1 = p.slot(2, 4);
  EXPECT_TRUE(d0.duplicate);
  EXPECT_TRUE(d1.duplicate);
  // Duplicates cycle over the real packets of the last block (10, 11, 12).
  EXPECT_EQ(d0.packet, 10u);
  EXPECT_EQ(d1.packet, 11u);
}

TEST(BlockPartition, SinglePacketBlockFullyDuplicated) {
  const BlockPartition p(11, 5);  // last block: packet 10 + 4 dups of it
  for (std::size_t s = 1; s < 5; ++s) {
    EXPECT_TRUE(p.slot(2, s).duplicate);
    EXPECT_EQ(p.slot(2, s).packet, 10u);
  }
}

TEST(BlockPartition, BlockAndSeqOfPacket) {
  const BlockPartition p(23, 10);
  EXPECT_EQ(p.block_of_packet(0), 0u);
  EXPECT_EQ(p.block_of_packet(9), 0u);
  EXPECT_EQ(p.block_of_packet(10), 1u);
  EXPECT_EQ(p.block_of_packet(22), 2u);
  EXPECT_EQ(p.seq_of_packet(22), 2u);
  EXPECT_THROW(p.block_of_packet(23), EnsureError);
}

TEST(BlockPartition, KOne) {
  const BlockPartition p(7, 1);
  EXPECT_EQ(p.num_blocks(), 7u);
  EXPECT_EQ(p.num_slots(), 7u);
  for (std::size_t i = 0; i < 7; ++i) {
    EXPECT_EQ(p.slot(i, 0).packet, i);
    EXPECT_FALSE(p.slot(i, 0).duplicate);
  }
}

TEST(BlockPartition, KLargerThanMessage) {
  const BlockPartition p(3, 10);
  EXPECT_EQ(p.num_blocks(), 1u);
  EXPECT_EQ(p.num_slots(), 10u);
  int dups = 0;
  for (std::size_t s = 0; s < 10; ++s) dups += p.slot(0, s).duplicate;
  EXPECT_EQ(dups, 7);
}

TEST(BlockPartition, InterleavedOrderCoversAllSlotsOnce) {
  const BlockPartition p(23, 10);
  const auto order = p.interleaved_order();
  EXPECT_EQ(order.size(), p.num_slots());
  std::set<std::pair<std::size_t, std::size_t>> seen;
  for (const BlockSlot& s : order) seen.insert({s.block, s.seq});
  EXPECT_EQ(seen.size(), p.num_slots());
}

TEST(BlockPartition, InterleavedOrderSeparatesSameBlock) {
  const BlockPartition p(40, 10);  // 4 blocks
  const auto order = p.interleaved_order();
  // Consecutive packets of the same block must be num_blocks apart.
  std::map<std::size_t, std::vector<std::size_t>> positions;
  for (std::size_t i = 0; i < order.size(); ++i)
    positions[order[i].block].push_back(i);
  for (const auto& [block, pos] : positions) {
    for (std::size_t j = 1; j < pos.size(); ++j)
      EXPECT_EQ(pos[j] - pos[j - 1], p.num_blocks());
  }
}

TEST(BlockPartition, SequentialOrderIsBlockMajor) {
  const BlockPartition p(30, 10);
  const auto order = p.sequential_order();
  for (std::size_t i = 1; i < order.size(); ++i)
    EXPECT_LE(order[i - 1].block, order[i].block);
}

TEST(BlockPartition, RejectsZeroSizes) {
  EXPECT_THROW(BlockPartition(0, 10), EnsureError);
  EXPECT_THROW(BlockPartition(10, 0), EnsureError);
}

}  // namespace
}  // namespace rekey::fec
