// Property tests for the Reed-Solomon coder on top of the SIMD region
// kernels: for random k <= 64, n <= 256 total shards, random packet sizes
// and random erasure patterns leaving any k-of-n subset, decode
// reconstructs the block exactly; fewer than k shards returns nullopt.
// The whole suite runs per SIMD path (scalar + every native path the host
// supports) via the force_simd_path hook, so a kernel bug on either path
// fails here and not just in production.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "fec/gf256_simd.h"
#include "fec/rse.h"

namespace rekey::fec {
namespace {

constexpr SimdPath kAllPaths[] = {SimdPath::kScalar, SimdPath::kSsse3,
                                  SimdPath::kAvx2, SimdPath::kNeon};

std::vector<Bytes> random_block(int k, std::size_t len, Rng& rng) {
  std::vector<Bytes> data(static_cast<std::size_t>(k));
  for (auto& pkt : data) {
    pkt.resize(len);
    for (auto& b : pkt) b = static_cast<std::uint8_t>(rng.next_in(0, 255));
  }
  return data;
}

class RseProperty : public ::testing::TestWithParam<SimdPath> {
 protected:
  void SetUp() override {
    if (!simd_path_supported(GetParam()))
      GTEST_SKIP() << simd_path_name(GetParam())
                   << " not compiled/supported on this host";
    prev_ = force_simd_path(GetParam());
  }
  void TearDown() override {
    if (!IsSkipped()) force_simd_path(prev_);
  }

 private:
  SimdPath prev_ = SimdPath::kScalar;
};

TEST_P(RseProperty, AnyKOfNSubsetReconstructs) {
  Rng rng(0x12E + static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 60; ++trial) {
    const int k = static_cast<int>(rng.next_in(1, 64));
    const int max_extra = std::min(256 - k, 192);  // n = k + parities <= 256
    const int parities = static_cast<int>(
        rng.next_in(1, static_cast<std::uint64_t>(max_extra)));
    // Sizes deliberately include sub-vector packets and odd tails.
    const std::size_t len = rng.next_bool(0.3)
                                ? rng.next_in(1, 31)
                                : rng.next_in(32, 1100);
    const RseCoder coder(k);
    const auto data = random_block(k, len, rng);

    std::vector<Shard> all;
    for (int i = 0; i < k; ++i) all.push_back({i, data[i]});
    for (int p = 0; p < parities; ++p)
      all.push_back({k + p, coder.encode_one(data, p)});

    // Random erasure pattern: keep exactly k of the n shards.
    const auto pick = rng.sample_without_replacement(
        static_cast<std::uint64_t>(k + parities),
        static_cast<std::uint64_t>(k));
    std::vector<Shard> subset;
    for (const auto i : pick) subset.push_back(all[i]);

    const auto out = coder.decode(subset);
    ASSERT_TRUE(out.has_value())
        << "k=" << k << " parities=" << parities << " len=" << len;
    ASSERT_EQ(*out, data)
        << "k=" << k << " parities=" << parities << " len=" << len;
  }
}

TEST_P(RseProperty, FewerThanKSharesIsNullopt) {
  Rng rng(0xFE3 + static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 30; ++trial) {
    const int k = static_cast<int>(rng.next_in(2, 64));
    const int parities = static_cast<int>(
        rng.next_in(1, static_cast<std::uint64_t>(std::min(256 - k, 64))));
    const std::size_t len = rng.next_in(1, 200);
    const RseCoder coder(k);
    const auto data = random_block(k, len, rng);

    std::vector<Shard> all;
    for (int i = 0; i < k; ++i) all.push_back({i, data[i]});
    for (int p = 0; p < parities; ++p)
      all.push_back({k + p, coder.encode_one(data, p)});

    // Any subset of size k-1 (or fewer) must be rejected, never mis-decode.
    const auto keep = rng.next_in(0, static_cast<std::uint64_t>(k - 1));
    const auto pick = rng.sample_without_replacement(
        static_cast<std::uint64_t>(k + parities), keep);
    std::vector<Shard> subset;
    for (const auto i : pick) subset.push_back(all[i]);
    EXPECT_FALSE(coder.decode(subset).has_value())
        << "k=" << k << " shards=" << keep;
  }
}

TEST_P(RseProperty, EncodeOneIntoMatchesEncodeOne) {
  Rng rng(0x1A70);
  for (int trial = 0; trial < 20; ++trial) {
    const int k = static_cast<int>(rng.next_in(1, 32));
    const std::size_t len = rng.next_in(1, 600);
    const RseCoder coder(k);
    const auto data = random_block(k, len, rng);
    const int parity = static_cast<int>(
        rng.next_in(0, static_cast<std::uint64_t>(coder.max_parity() - 1)));
    Bytes out(len, 0xEE);
    coder.encode_one_into(data, parity, out);
    EXPECT_EQ(out, coder.encode_one(data, parity));
  }
}

INSTANTIATE_TEST_SUITE_P(AllPaths, RseProperty, ::testing::ValuesIn(kAllPaths),
                         [](const auto& info) {
                           return std::string(simd_path_name(info.param));
                         });

}  // namespace
}  // namespace rekey::fec
