// Soak build of the chaos harness: same invariants, 240 seeded scenarios
// (each run twice for the replay check). Runs under `ctest -L soak`.
#define REKEY_CHAOS_SCENARIOS 240
#include "chaos_test.cpp"  // NOLINT(bugprone-suspicious-include)
