// Simulator tests: event-loop ordering, loss-process statistics (the
// stationary rate and the paper's 100 ms burst/gap means), and the
// Nonnenmacher topology wiring.
#include <gtest/gtest.h>

#include <vector>

#include "common/ensure.h"
#include "simnet/event_loop.h"
#include "simnet/loss.h"
#include "simnet/topology.h"

namespace rekey::simnet {
namespace {

TEST(EventLoop, FiresInTimeOrder) {
  EventLoop loop;
  std::vector<int> fired;
  loop.schedule_at(30.0, [&] { fired.push_back(3); });
  loop.schedule_at(10.0, [&] { fired.push_back(1); });
  loop.schedule_at(20.0, [&] { fired.push_back(2); });
  loop.run();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), 30.0);
}

TEST(EventLoop, TiesFireInScheduleOrder) {
  EventLoop loop;
  std::vector<int> fired;
  for (int i = 0; i < 5; ++i)
    loop.schedule_at(5.0, [&fired, i] { fired.push_back(i); });
  loop.run();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventLoop, ActionsCanScheduleMore) {
  EventLoop loop;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 5) loop.schedule_in(1.0, tick);
  };
  loop.schedule_at(0.0, tick);
  loop.run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(loop.now(), 4.0);
}

TEST(EventLoop, PastSchedulingRejected) {
  EventLoop loop;
  loop.schedule_at(10.0, [] {});
  loop.run();
  EXPECT_THROW(loop.schedule_at(5.0, [] {}), EnsureError);
}

TEST(EventLoop, RunUntilStopsAtBoundary) {
  EventLoop loop;
  std::vector<double> fired;
  for (double t = 1.0; t <= 10.0; t += 1.0)
    loop.schedule_at(t, [&fired, t] { fired.push_back(t); });
  loop.run_until(5.0);
  EXPECT_EQ(fired.size(), 5u);
  EXPECT_EQ(loop.now(), 5.0);
  EXPECT_EQ(loop.pending(), 5u);
}

TEST(EventLoop, RunawayGuard) {
  EventLoop loop;
  std::function<void()> forever = [&] { loop.schedule_in(1.0, forever); };
  loop.schedule_at(0.0, forever);
  EXPECT_THROW(loop.run(/*max_events=*/1000), EnsureError);
}

TEST(BernoulliLoss, MatchesRate) {
  BernoulliLoss loss(0.2, Rng(1));
  int lost = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) lost += loss.lost(i * 1.0);
  EXPECT_NEAR(static_cast<double>(lost) / n, 0.2, 0.01);
}

TEST(GilbertLoss, DegenerateRates) {
  GilbertLoss none(0.0, Rng(2));
  GilbertLoss all(1.0, Rng(3));
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(none.lost(i * 10.0));
    EXPECT_TRUE(all.lost(i * 10.0));
  }
}

TEST(GilbertLoss, StationaryRateMatches) {
  for (const double p : {0.02, 0.2, 0.5}) {
    GilbertLoss loss(p, Rng(static_cast<std::uint64_t>(p * 100)));
    int lost = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) lost += loss.lost(i * 7.0);
    EXPECT_NEAR(static_cast<double>(lost) / n, p, 0.02) << "p=" << p;
  }
}

TEST(GilbertLoss, LossesAreBursty) {
  // With mean burst 100*p ms and samples 1 ms apart, consecutive samples
  // inside a burst should be strongly correlated — far more than i.i.d.
  GilbertLoss loss(0.2, Rng(7));
  int lost_pairs = 0, lost_first = 0;
  bool prev = false;
  const int n = 400000;
  for (int i = 0; i < n; ++i) {
    const bool cur = loss.lost(i * 1.0);
    if (prev) {
      ++lost_first;
      if (cur) ++lost_pairs;
    }
    prev = cur;
  }
  ASSERT_GT(lost_first, 0);
  const double cond = static_cast<double>(lost_pairs) / lost_first;
  // P(loss | loss 1 ms earlier) ~= exp(-1/20) ~= 0.95, versus 0.2 i.i.d.
  EXPECT_GT(cond, 0.8);
}

TEST(GilbertLoss, MeanBurstDurationNearPaperModel) {
  // Burst mean should be ~100*p ms (p = 0.2 -> 20 ms).
  GilbertLoss loss(0.2, Rng(11));
  double burst_total = 0.0;
  int bursts = 0;
  bool in_burst = false;
  double burst_start = 0.0;
  const double dt = 0.25;
  for (int i = 0; i < 2000000; ++i) {
    const double t = i * dt;
    const bool cur = loss.lost(t);
    if (cur && !in_burst) {
      in_burst = true;
      burst_start = t;
    } else if (!cur && in_burst) {
      in_burst = false;
      burst_total += t - burst_start;
      ++bursts;
    }
  }
  ASSERT_GT(bursts, 100);
  EXPECT_NEAR(burst_total / bursts, 20.0, 2.5);
}

TEST(MakeLoss, FactorySelectsModel) {
  auto bursty = make_loss(true, 0.1, Rng(1));
  auto memoryless = make_loss(false, 0.1, Rng(1));
  EXPECT_NE(dynamic_cast<GilbertLoss*>(bursty.get()), nullptr);
  EXPECT_NE(dynamic_cast<BernoulliLoss*>(memoryless.get()), nullptr);
}

TEST(Topology, HighLossFractionExact) {
  TopologyConfig cfg;
  cfg.num_users = 1000;
  cfg.alpha = 0.2;
  Topology topo(cfg, 42);
  std::size_t high = 0;
  for (std::size_t u = 0; u < cfg.num_users; ++u)
    high += topo.is_high_loss(u);
  EXPECT_EQ(high, 200u);
}

TEST(Topology, PerUserLossRatesMatchClass) {
  TopologyConfig cfg;
  cfg.num_users = 40;
  cfg.alpha = 0.5;
  cfg.burst_loss = false;  // Bernoulli for crisp statistics
  Topology topo(cfg, 7);
  for (std::size_t u = 0; u < cfg.num_users; ++u) {
    int lost = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) lost += topo.user_lost(u, i * 1.0);
    const double rate = static_cast<double>(lost) / n;
    if (topo.is_high_loss(u)) {
      EXPECT_NEAR(rate, cfg.p_high, 0.02);
    } else {
      EXPECT_NEAR(rate, cfg.p_low, 0.01);
    }
  }
}

TEST(Topology, DelaysWithinConfiguredRange) {
  TopologyConfig cfg;
  cfg.num_users = 500;
  Topology topo(cfg, 9);
  double max_seen = 0.0;
  for (std::size_t u = 0; u < cfg.num_users; ++u) {
    const double d = topo.delay_ms(u);
    EXPECT_GE(d, 2 * cfg.edge_delay_ms + cfg.backbone_min_ms);
    EXPECT_LE(d, 2 * cfg.edge_delay_ms + cfg.backbone_max_ms);
    max_seen = std::max(max_seen, d);
  }
  EXPECT_DOUBLE_EQ(topo.max_delay_ms(), max_seen);
  EXPECT_DOUBLE_EQ(topo.max_rtt_ms(), 2 * max_seen);
}

TEST(Topology, DeterministicAcrossSeeds) {
  TopologyConfig cfg;
  cfg.num_users = 50;
  Topology a(cfg, 1234), b(cfg, 1234);
  for (std::size_t u = 0; u < 50; ++u) {
    EXPECT_EQ(a.is_high_loss(u), b.is_high_loss(u));
    EXPECT_EQ(a.delay_ms(u), b.delay_ms(u));
    EXPECT_EQ(a.user_lost(u, 5.0), b.user_lost(u, 5.0));
  }
}

TEST(Topology, UplinkAndDownlinkIndependent) {
  TopologyConfig cfg;
  cfg.num_users = 4;
  cfg.p_high = 1.0;
  cfg.alpha = 1.0;
  Topology topo(cfg, 3);
  // With p=1, both directions must drop everything (degenerate check that
  // the uplink processes exist and are driven by the same class rate).
  for (std::size_t u = 0; u < 4; ++u) {
    EXPECT_TRUE(topo.user_lost(u, 1.0));
    EXPECT_TRUE(topo.user_uplink_lost(u, 1.0));
  }
}

}  // namespace
}  // namespace rekey::simnet
