// Simulator tests: event-loop ordering, loss-process statistics (the
// stationary rate and the paper's 100 ms burst/gap means), and the
// Nonnenmacher topology wiring.
#include <gtest/gtest.h>

#include <vector>

#include "common/ensure.h"
#include "simnet/event_loop.h"
#include "simnet/loss.h"
#include "simnet/topology.h"

namespace rekey::simnet {
namespace {

TEST(EventLoop, FiresInTimeOrder) {
  EventLoop loop;
  std::vector<int> fired;
  loop.schedule_at(30.0, [&] { fired.push_back(3); });
  loop.schedule_at(10.0, [&] { fired.push_back(1); });
  loop.schedule_at(20.0, [&] { fired.push_back(2); });
  loop.run();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), 30.0);
}

TEST(EventLoop, TiesFireInScheduleOrder) {
  EventLoop loop;
  std::vector<int> fired;
  for (int i = 0; i < 5; ++i)
    loop.schedule_at(5.0, [&fired, i] { fired.push_back(i); });
  loop.run();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventLoop, ActionsCanScheduleMore) {
  EventLoop loop;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 5) loop.schedule_in(1.0, tick);
  };
  loop.schedule_at(0.0, tick);
  loop.run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(loop.now(), 4.0);
}

TEST(EventLoop, PastSchedulingRejected) {
  EventLoop loop;
  loop.schedule_at(10.0, [] {});
  loop.run();
  EXPECT_THROW(loop.schedule_at(5.0, [] {}), EnsureError);
}

TEST(EventLoop, RunUntilStopsAtBoundary) {
  EventLoop loop;
  std::vector<double> fired;
  for (double t = 1.0; t <= 10.0; t += 1.0)
    loop.schedule_at(t, [&fired, t] { fired.push_back(t); });
  loop.run_until(5.0);
  EXPECT_EQ(fired.size(), 5u);
  EXPECT_EQ(loop.now(), 5.0);
  EXPECT_EQ(loop.pending(), 5u);
}

TEST(EventLoop, RunawayGuard) {
  EventLoop loop;
  std::function<void()> forever = [&] { loop.schedule_in(1.0, forever); };
  loop.schedule_at(0.0, forever);
  EXPECT_THROW(loop.run(/*max_events=*/1000), EnsureError);
}

TEST(BernoulliLoss, MatchesRate) {
  BernoulliLoss loss(0.2, Rng(1));
  int lost = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) lost += loss.lost(i * 1.0);
  EXPECT_NEAR(static_cast<double>(lost) / n, 0.2, 0.01);
}

TEST(GilbertLoss, DegenerateRates) {
  GilbertLoss none(0.0, Rng(2));
  GilbertLoss all(1.0, Rng(3));
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(none.lost(i * 10.0));
    EXPECT_TRUE(all.lost(i * 10.0));
  }
}

TEST(GilbertLoss, StationaryRateMatches) {
  for (const double p : {0.02, 0.2, 0.5}) {
    GilbertLoss loss(p, Rng(static_cast<std::uint64_t>(p * 100)));
    int lost = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) lost += loss.lost(i * 7.0);
    EXPECT_NEAR(static_cast<double>(lost) / n, p, 0.02) << "p=" << p;
  }
}

TEST(GilbertLoss, LossesAreBursty) {
  // With mean burst 100*p ms and samples 1 ms apart, consecutive samples
  // inside a burst should be strongly correlated — far more than i.i.d.
  GilbertLoss loss(0.2, Rng(7));
  int lost_pairs = 0, lost_first = 0;
  bool prev = false;
  const int n = 400000;
  for (int i = 0; i < n; ++i) {
    const bool cur = loss.lost(i * 1.0);
    if (prev) {
      ++lost_first;
      if (cur) ++lost_pairs;
    }
    prev = cur;
  }
  ASSERT_GT(lost_first, 0);
  const double cond = static_cast<double>(lost_pairs) / lost_first;
  // P(loss | loss 1 ms earlier) ~= exp(-1/20) ~= 0.95, versus 0.2 i.i.d.
  EXPECT_GT(cond, 0.8);
}

TEST(GilbertLoss, MeanBurstDurationNearPaperModel) {
  // Burst mean should be ~100*p ms (p = 0.2 -> 20 ms).
  GilbertLoss loss(0.2, Rng(11));
  double burst_total = 0.0;
  int bursts = 0;
  bool in_burst = false;
  double burst_start = 0.0;
  const double dt = 0.25;
  for (int i = 0; i < 2000000; ++i) {
    const double t = i * dt;
    const bool cur = loss.lost(t);
    if (cur && !in_burst) {
      in_burst = true;
      burst_start = t;
    } else if (!cur && in_burst) {
      in_burst = false;
      burst_total += t - burst_start;
      ++bursts;
    }
  }
  ASSERT_GT(bursts, 100);
  EXPECT_NEAR(burst_total / bursts, 20.0, 2.5);
}

TEST(MakeLoss, FactorySelectsModel) {
  auto bursty = make_loss(true, 0.1, Rng(1));
  auto memoryless = make_loss(false, 0.1, Rng(1));
  EXPECT_NE(dynamic_cast<GilbertLoss*>(bursty.get()), nullptr);
  EXPECT_NE(dynamic_cast<BernoulliLoss*>(memoryless.get()), nullptr);
}

TEST(Topology, HighLossFractionExact) {
  TopologyConfig cfg;
  cfg.num_users = 1000;
  cfg.alpha = 0.2;
  Topology topo(cfg, 42);
  std::size_t high = 0;
  for (std::size_t u = 0; u < cfg.num_users; ++u)
    high += topo.is_high_loss(u);
  EXPECT_EQ(high, 200u);
}

TEST(Topology, PerUserLossRatesMatchClass) {
  TopologyConfig cfg;
  cfg.num_users = 40;
  cfg.alpha = 0.5;
  cfg.burst_loss = false;  // Bernoulli for crisp statistics
  Topology topo(cfg, 7);
  for (std::size_t u = 0; u < cfg.num_users; ++u) {
    int lost = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) lost += topo.user_lost(u, i * 1.0);
    const double rate = static_cast<double>(lost) / n;
    if (topo.is_high_loss(u)) {
      EXPECT_NEAR(rate, cfg.p_high, 0.02);
    } else {
      EXPECT_NEAR(rate, cfg.p_low, 0.01);
    }
  }
}

TEST(Topology, DelaysWithinConfiguredRange) {
  TopologyConfig cfg;
  cfg.num_users = 500;
  Topology topo(cfg, 9);
  double max_seen = 0.0;
  for (std::size_t u = 0; u < cfg.num_users; ++u) {
    const double d = topo.delay_ms(u);
    EXPECT_GE(d, 2 * cfg.edge_delay_ms + cfg.backbone_min_ms);
    EXPECT_LE(d, 2 * cfg.edge_delay_ms + cfg.backbone_max_ms);
    max_seen = std::max(max_seen, d);
  }
  EXPECT_DOUBLE_EQ(topo.max_delay_ms(), max_seen);
  EXPECT_DOUBLE_EQ(topo.max_rtt_ms(), 2 * max_seen);
}

TEST(Topology, DeterministicAcrossSeeds) {
  TopologyConfig cfg;
  cfg.num_users = 50;
  Topology a(cfg, 1234), b(cfg, 1234);
  for (std::size_t u = 0; u < 50; ++u) {
    EXPECT_EQ(a.is_high_loss(u), b.is_high_loss(u));
    EXPECT_EQ(a.delay_ms(u), b.delay_ms(u));
    EXPECT_EQ(a.user_lost(u, 5.0), b.user_lost(u, 5.0));
  }
}

TEST(Topology, UplinkAndDownlinkIndependent) {
  TopologyConfig cfg;
  cfg.num_users = 4;
  cfg.p_high = 1.0;
  cfg.alpha = 1.0;
  Topology topo(cfg, 3);
  // With p=1, both directions must drop everything (degenerate check that
  // the uplink processes exist and are driven by the same class rate).
  for (std::size_t u = 0; u < 4; ++u) {
    EXPECT_TRUE(topo.user_lost(u, 1.0));
    EXPECT_TRUE(topo.user_uplink_lost(u, 1.0));
  }
}

TEST(BernoulliLoss, BackwardsQueryTimeRejected) {
  // Both loss models now share the monotone-query contract: Bernoulli
  // draws don't depend on t, but a backwards query is still caller misuse
  // (it silently desynchronizes any Gilbert process sharing the timeline).
  BernoulliLoss loss(0.5, Rng(42));
  (void)loss.lost(10.0);
  (void)loss.lost(10.0);  // equal times are fine (weakly increasing)
  (void)loss.lost(11.5);
  EXPECT_THROW((void)loss.lost(11.0), EnsureError);
}

TEST(FaultPlan, ValidateRejectsNonsense) {
  FaultPlan plan;
  plan.validate();  // defaults are valid (and inactive)
  EXPECT_FALSE(plan.active());
  plan.duplicate_prob = 1.5;
  EXPECT_THROW(plan.validate(), EnsureError);
  plan.duplicate_prob = 0.1;
  plan.validate();
  EXPECT_TRUE(plan.active());
  plan.reorder_prob = 0.2;  // reorder without a jitter bound is nonsense
  plan.reorder_jitter_ms = 0.0;
  EXPECT_THROW(plan.validate(), EnsureError);
  plan.reorder_jitter_ms = 100.0;
  plan.validate();
  plan.blackouts.push_back({5.0, 5.0});  // empty window
  EXPECT_THROW(plan.validate(), EnsureError);
}

TEST(FaultInjector, BlackoutScheduleIsExactAndSorted) {
  FaultPlan plan;
  // Deliberately unsorted; the injector sorts by start time.
  plan.blackouts.push_back({100.0, 200.0});
  plan.blackouts.push_back({10.0, 20.0});
  FaultInjector inj(plan, 1, 4);
  EXPECT_FALSE(inj.blackout_at(9.9));
  EXPECT_TRUE(inj.blackout_at(10.0));   // start inclusive
  EXPECT_TRUE(inj.blackout_at(19.9));
  EXPECT_FALSE(inj.blackout_at(20.0));  // end exclusive
  EXPECT_TRUE(inj.blackout_at(150.0));
  EXPECT_FALSE(inj.blackout_at(250.0));
  EXPECT_TRUE(inj.blackout_overlaps(0.0, 10.0));
  EXPECT_TRUE(inj.blackout_overlaps(30.0, 120.0));
  EXPECT_FALSE(inj.blackout_overlaps(20.0, 99.0));
  EXPECT_FALSE(inj.blackout_overlaps(201.0, 300.0));
}

TEST(FaultInjector, DecisionStreamsReplayBitIdentically) {
  FaultPlan plan;
  plan.duplicate_prob = 0.3;
  plan.max_duplicates = 3;
  plan.reorder_prob = 0.2;
  plan.reorder_jitter_ms = 50.0;
  plan.corrupt_prob = 0.2;
  plan.nack_storm_prob = 0.4;
  FaultInjector a(plan, 99, 8), b(plan, 99, 8);
  for (int step = 0; step < 200; ++step) {
    const std::size_t u = static_cast<std::size_t>(step % 8);
    const double t = static_cast<double>(step);
    const auto da = a.user_delivery(u, t);
    const auto db = b.user_delivery(u, t);
    EXPECT_EQ(da.extra_copies, db.extra_copies);
    EXPECT_EQ(da.jitter_ms, db.jitter_ms);
    EXPECT_EQ(da.corrupt, db.corrupt);
    EXPECT_EQ(a.nack_extra_copies(u, t), b.nack_extra_copies(u, t));
  }
  EXPECT_EQ(a.stats(), b.stats());
  // And a different seed gives a different stream.
  FaultInjector c(plan, 100, 8);
  bool any_diff = false;
  for (int step = 0; step < 200 && !any_diff; ++step) {
    const auto dc = c.user_delivery(static_cast<std::size_t>(step % 8), 0.0);
    const auto da2 = a.user_delivery(static_cast<std::size_t>(step % 8), 0.0);
    any_diff = dc.extra_copies != da2.extra_copies ||
               dc.corrupt != da2.corrupt || dc.jitter_ms != da2.jitter_ms;
  }
  EXPECT_TRUE(any_diff);
}

TEST(FaultInjector, PerUserStreamsAreIndependent) {
  FaultPlan plan;
  plan.duplicate_prob = 0.5;
  plan.corrupt_prob = 0.5;
  // Draw heavily from user 0 in one injector only; user 1's stream must be
  // unaffected by user 0's consumption.
  FaultInjector a(plan, 7, 2), b(plan, 7, 2);
  for (int i = 0; i < 100; ++i) (void)a.user_delivery(0, 0.0);
  for (int i = 0; i < 50; ++i) {
    const auto da = a.user_delivery(1, 0.0);
    const auto db = b.user_delivery(1, 0.0);
    EXPECT_EQ(da.extra_copies, db.extra_copies);
    EXPECT_EQ(da.corrupt, db.corrupt);
  }
}

TEST(FaultInjector, CorruptCopyAlwaysDiffers) {
  FaultPlan plan;
  plan.corrupt_prob = 1.0;
  plan.corrupt_max_flips = 2;
  FaultInjector inj(plan, 3, 1);
  const Bytes wire(64, 0x55);
  for (int i = 0; i < 200; ++i) {
    const Bytes damaged = inj.corrupt_copy(0, wire);
    ASSERT_EQ(damaged.size(), wire.size());
    EXPECT_NE(damaged, wire);
  }
}

TEST(Topology, BlackoutEatsEveryLinkDuringWindow) {
  TopologyConfig cfg;
  cfg.num_users = 4;
  cfg.p_high = 0.0;  // lossless baseline: only the blackout can drop
  cfg.p_low = 0.0;
  cfg.p_source = 0.0;
  cfg.burst_loss = false;
  Topology topo(cfg, 11);
  FaultPlan plan;
  plan.blackouts.push_back({100.0, 200.0});
  topo.install_faults(plan, 5);
  ASSERT_NE(topo.faults(), nullptr);
  EXPECT_FALSE(topo.source_lost(50.0));
  EXPECT_FALSE(topo.user_lost(0, 60.0));
  EXPECT_TRUE(topo.source_lost(150.0));
  EXPECT_TRUE(topo.user_lost(1, 150.0));
  EXPECT_TRUE(topo.user_uplink_lost(2, 199.0));
  EXPECT_TRUE(topo.source_uplink_lost(199.5));
  EXPECT_FALSE(topo.source_lost(200.0));
  EXPECT_FALSE(topo.user_lost(3, 250.0));
  EXPECT_EQ(topo.faults()->stats().blackout_drops, 4u);
}

TEST(Topology, BlackoutDoesNotPerturbLossStreams) {
  // The same queries with and without a blackout window outside the
  // queried range must draw identically: the blackout check happens before
  // the loss-process draw, so streams resume unperturbed after a window.
  TopologyConfig cfg;
  cfg.num_users = 8;
  Topology plain(cfg, 77), faulted(cfg, 77);
  FaultPlan plan;
  plan.blackouts.push_back({1000.0, 2000.0});
  faulted.install_faults(plan, 9);
  for (int i = 0; i < 50; ++i) {
    const double t = static_cast<double>(i * 10);  // all before the window
    EXPECT_EQ(plain.source_lost(t), faulted.source_lost(t));
    for (std::size_t u = 0; u < 8; ++u)
      EXPECT_EQ(plain.user_lost(u, t), faulted.user_lost(u, t));
  }
}

}  // namespace
}  // namespace rekey::simnet
