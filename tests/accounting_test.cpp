// Regression tests for the transport accounting fixes: unicast recoveries
// charged the wave they actually took, the Gilbert loss monotonicity
// contract, and usr_wire_bytes as the single source of truth for USR
// packet cost.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>

#include "common/ensure.h"
#include "common/rng.h"
#include "packet/wire.h"
#include "simnet/loss.h"
#include "transport/metrics.h"
#include "transport/server.h"
#include "transport/session.h"
#include "transport/workload.h"

namespace rekey::transport {
namespace {

MessageMetrics waved_message() {
  MessageMetrics m;
  m.users = 100;
  m.multicast_rounds = 2;
  m.recovered_in_round = {{1, 90}, {2, 5}};
  m.unicast_users = 5;
  // Wave w costs multicast_rounds + w rounds.
  m.unicast_recovered_in_wave = {{1, 3}, {3, 2}};
  m.unicast_waves = 3;
  return m;
}

TEST(UnicastWaves, MeanUserRoundsChargesActualWave) {
  const MessageMetrics m = waved_message();
  // 90*1 + 5*2 + 3*(2+1) + 2*(2+3) = 119 over 100 users.
  EXPECT_DOUBLE_EQ(m.mean_user_rounds(), 1.19);
  // The last stragglers finished in wave 3 = round 5.
  EXPECT_EQ(m.rounds_to_all(), 5);
}

TEST(UnicastWaves, FlatChargingWouldUndercount) {
  // The pre-fix accounting flattened every unicast recovery into the
  // multicast_rounds + 1 bucket; the wave-aware metrics must exceed it
  // whenever any straggler needed more than one wave.
  MessageMetrics flat = waved_message();
  flat.unicast_recovered_in_wave.clear();  // falls back to wave 1
  EXPECT_DOUBLE_EQ(flat.mean_user_rounds(), 1.15);
  EXPECT_EQ(flat.rounds_to_all(), 3);
  EXPECT_GT(waved_message().mean_user_rounds(), flat.mean_user_rounds());
}

TEST(UnicastWaves, UnattributedUsersFallBackToWaveOne) {
  MessageMetrics m = waved_message();
  m.unicast_recovered_in_wave = {{2, 3}};  // 2 of 5 users unattributed
  // 90*1 + 5*2 + 3*(2+2) + 2*(2+1) = 118 over 100 users.
  EXPECT_DOUBLE_EQ(m.mean_user_rounds(), 1.18);
  EXPECT_EQ(m.rounds_to_all(), 4);
}

TEST(UnicastWaves, RoundDistributionPlacesWavesInTheirBuckets) {
  RunMetrics run;
  run.messages.push_back(waved_message());
  const auto dist = run.round_distribution();
  ASSERT_EQ(dist.size(), 4u);
  EXPECT_DOUBLE_EQ(dist.at(1), 0.90);
  EXPECT_DOUBLE_EQ(dist.at(2), 0.05);
  EXPECT_DOUBLE_EQ(dist.at(3), 0.03);  // wave 1
  EXPECT_DOUBLE_EQ(dist.at(5), 0.02);  // wave 3
}

TEST(UnicastWaves, SessionAttributesEveryUnicastUserToAWave) {
  simnet::TopologyConfig tc;
  tc.num_users = 512;
  tc.alpha = 0.3;
  tc.p_high = 0.4;
  tc.p_low = 0.02;
  tc.p_source = 0.01;
  tc.burst_loss = true;

  ProtocolConfig cfg;
  cfg.max_multicast_rounds = 1;  // force the unicast phase

  WorkloadConfig wc;
  wc.group_size = 512;
  wc.leaves = 128;
  auto msg = generate_message(wc, 3, 1);
  simnet::Topology topo(tc, 3 ^ 0xABCD);
  RhoController rho(cfg, 3);
  RekeySession session(topo, cfg, rho);
  const auto m = session.run_message(msg.payload, std::move(msg.assignment),
                                     msg.old_ids);

  ASSERT_GT(m.unicast_users, 0u);
  std::size_t attributed = 0;
  int max_wave = 0;
  for (const auto& [wave, count] : m.unicast_recovered_in_wave) {
    EXPECT_GE(wave, 1);
    EXPECT_LE(wave, static_cast<int>(m.unicast_waves));
    attributed += count;
    max_wave = std::max(max_wave, wave);
  }
  // Every unicast recovery is attributed to a real wave — no silent
  // fallback into the flat "+1" bucket.
  EXPECT_EQ(attributed, m.unicast_users);
  EXPECT_GE(m.unicast_waves, static_cast<std::size_t>(max_wave));
  EXPECT_EQ(m.rounds_to_all(), m.multicast_rounds + max_wave);
}

TEST(GilbertLoss, AcceptsWeaklyIncreasingQueries) {
  simnet::GilbertLoss loss(0.3, Rng(42));
  loss.lost(0.0);
  loss.lost(0.0);  // equal times are fine
  loss.lost(5.0);
  loss.lost(125.0);
  loss.lost(125.0);
  SUCCEED();
}

TEST(GilbertLoss, RejectsBackwardsQueries) {
  simnet::GilbertLoss loss(0.3, Rng(42));
  loss.lost(10.0);
  EXPECT_THROW(loss.lost(9.999), EnsureError);
}

TEST(GilbertLoss, RejectsBackwardsQueriesEvenWhenDegenerate) {
  // p = 0 short-circuits the chain, but the contract still holds: a
  // backwards query is a caller bug regardless of the loss rate.
  simnet::GilbertLoss loss(0.0, Rng(1));
  EXPECT_FALSE(loss.lost(50.0));
  EXPECT_THROW(loss.lost(0.0), EnsureError);
}

TEST(UsrWireBytes, MatchesSerializedPacketForEveryUser) {
  WorkloadConfig wc;
  wc.group_size = 256;
  wc.leaves = 64;
  auto msg = generate_message(wc, 7, 1);
  ProtocolConfig cfg;
  ServerTransport server(cfg, msg.payload, std::move(msg.assignment),
                         /*proactive_parities=*/0, /*msg_id=*/1);

  ASSERT_FALSE(msg.payload.user_needs.empty());
  for (const auto& [id, needs] : msg.payload.user_needs) {
    const auto new_id = static_cast<std::uint16_t>(id);
    const auto wire = server.usr_for(new_id).serialize();
    EXPECT_EQ(server.usr_wire_bytes(new_id),
              wire.size() + packet::kUdpIpOverheadBytes)
        << "user " << new_id;
  }
}

TEST(UsrWireBytes, AbsentUserCostsABareHeader) {
  WorkloadConfig wc;
  wc.group_size = 256;
  wc.leaves = 64;
  auto msg = generate_message(wc, 7, 1);
  ProtocolConfig cfg;
  ServerTransport server(cfg, msg.payload, std::move(msg.assignment), 0, 1);

  const std::uint16_t absent = 0xFFFF;
  ASSERT_FALSE(msg.payload.user_needs.count(absent));
  EXPECT_EQ(server.usr_wire_bytes(absent),
            packet::kUsrHeaderSize + packet::kUdpIpOverheadBytes);
}

}  // namespace
}  // namespace rekey::transport
