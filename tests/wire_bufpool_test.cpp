// FrameBufferPool unit tests plus IoUringWire integration: slot reuse,
// exhaustion -> heap fallback (sends still succeed), return-to-pool on
// completion, and an in-flight-lifetime chaos run on a tiny pool that
// ASan must pass clean.
#include <gtest/gtest.h>

#include <vector>

#include "common/ensure.h"
#include "wire/backend.h"
#include "wire/bufpool.h"
#include "wire/control.h"
#include "wire/udp.h"
#include "wire/uring.h"

namespace rekey::wire {
namespace {

TEST(FrameBufferPool, AcquireReleaseRoundtrip) {
  FrameBufferPool pool(64, 4);
  EXPECT_EQ(pool.slot_size(), 64u);
  EXPECT_EQ(pool.slot_count(), 4u);
  EXPECT_EQ(pool.arena_bytes(), 256u);
  EXPECT_EQ(pool.in_flight(), 0u);

  const std::size_t a = pool.acquire();
  const std::size_t b = pool.acquire();
  ASSERT_NE(a, FrameBufferPool::kNone);
  ASSERT_NE(b, FrameBufferPool::kNone);
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.in_flight(), 2u);
  EXPECT_EQ(pool.high_water(), 2u);

  // Slots are distinct, writable regions of one contiguous arena.
  pool.slot(a)[0] = 0xAA;
  pool.slot(b)[0] = 0xBB;
  EXPECT_EQ(pool.slot(a)[0], 0xAA);
  EXPECT_EQ(pool.arena() + a * 64, pool.slot(a));

  pool.release(a);
  EXPECT_EQ(pool.in_flight(), 1u);
  pool.release(b);
  EXPECT_EQ(pool.in_flight(), 0u);
  EXPECT_EQ(pool.high_water(), 2u);
  EXPECT_EQ(pool.acquired_total(), 2u);
  EXPECT_EQ(pool.exhausted_total(), 0u);
}

TEST(FrameBufferPool, ExhaustionReturnsNoneAndCounts) {
  FrameBufferPool pool(16, 2);
  const std::size_t a = pool.acquire();
  const std::size_t b = pool.acquire();
  ASSERT_NE(a, FrameBufferPool::kNone);
  ASSERT_NE(b, FrameBufferPool::kNone);
  EXPECT_EQ(pool.acquire(), FrameBufferPool::kNone);
  EXPECT_EQ(pool.acquire(), FrameBufferPool::kNone);
  EXPECT_EQ(pool.exhausted_total(), 2u);
  EXPECT_EQ(pool.in_flight(), 2u);
  // A release makes a slot available again.
  pool.release(b);
  const std::size_t c = pool.acquire();
  EXPECT_EQ(c, b);
  EXPECT_EQ(pool.high_water(), 2u);
}

TEST(FrameBufferPool, MisuseIsRejected) {
  FrameBufferPool pool(16, 2);
  EXPECT_THROW(pool.release(5), EnsureError);  // out of range
  const std::size_t a = pool.acquire();
  pool.release(a);
  EXPECT_THROW(pool.release(a), EnsureError);  // double release
  EXPECT_THROW(FrameBufferPool(0, 4), EnsureError);
  EXPECT_THROW(FrameBufferPool(16, 0), EnsureError);
}

constexpr std::uint32_t kLoopback = 0x7F000001;

class IoUringPool : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!IoUringWire::supported())
      GTEST_SKIP() << "kernel lacks io_uring support";
  }
};

// A control-plane send borrows a pool slot and hands it back once its
// completion (and SEND_ZC notification, when in use) arrives.
TEST_F(IoUringPool, PooledSendReturnsSlotAfterCompletion) {
  IoUringWire a(kLoopback, 0);
  UdpWire b(kLoopback, 0);
  const Bytes payload{9, 8, 7};
  ASSERT_TRUE(a.send(b.local_endpoint(), kChanControl, payload));
  EXPECT_EQ(a.pool().acquired_total(), 1u);
  EXPECT_EQ(a.pool().in_flight(), 0u);

  std::vector<Datagram> in;
  ASSERT_EQ(b.receive(in, 2000), 1u);
  EXPECT_EQ(in[0].channel, kChanControl);
  EXPECT_EQ(in[0].payload, payload);
}

// With every slot pre-acquired the backend must fall back to a
// heap-owned frame — the send still goes out, nothing is dropped.
TEST_F(IoUringPool, ExhaustedPoolFallsBackToHeap) {
  IoUringWire::Options opts;
  opts.pool_slots = 2;
  IoUringWire a(kLoopback, 0, 1500, opts);
  UdpWire b(kLoopback, 0);

  std::vector<std::size_t> held;
  for (;;) {
    const std::size_t s = a.pool_for_test().acquire();
    if (s == FrameBufferPool::kNone) break;
    held.push_back(s);
  }
  ASSERT_EQ(held.size(), 2u);

  const Bytes payload{1, 2, 3, 4};
  ASSERT_TRUE(a.send(b.local_endpoint(), kChanControl, payload));
  EXPECT_GE(a.pool().exhausted_total(), 1u);

  std::vector<Datagram> in;
  ASSERT_EQ(b.receive(in, 2000), 1u);
  EXPECT_EQ(in[0].payload, payload);

  for (const std::size_t s : held) a.pool_for_test().release(s);
}

// Chaos run on a tiny pool: interleave single sends (pooled + heap
// fallback), bursts, and receives. Under ASan this catches any slot or
// heap-frame lifetime bug — a buffer reused or freed while the kernel
// still owns it.
TEST_F(IoUringPool, TinyPoolChaosIsLifetimeClean) {
  IoUringWire::Options opts;
  opts.pool_slots = 1;
  opts.recv_buffers = 8;
  IoUringWire a(kLoopback, 0, 1500, opts);
  IoUringWire b(kLoopback, 0, 1500, opts);

  std::vector<Datagram> at_b;
  std::size_t sent = 0;
  for (unsigned iter = 0; iter < 50; ++iter) {
    const Bytes payload(1 + (iter % 200), static_cast<std::uint8_t>(iter));
    ASSERT_TRUE(a.send(b.local_endpoint(), kChanData, payload));
    ++sent;
    if (iter % 3 == 0) {
      std::vector<Bytes> bodies;
      std::vector<const Bytes*> frames;
      for (unsigned j = 0; j < 5; ++j)
        bodies.push_back(Bytes(10 + j, static_cast<std::uint8_t>(j)));
      for (const Bytes& body : bodies) frames.push_back(&body);
      ASSERT_EQ(a.send_frames(b.local_endpoint(), kChanData, frames), 5u);
      sent += 5;
    }
    b.receive(at_b, 0);
  }
  while (at_b.size() < sent && b.receive(at_b, 2000) > 0) {
  }
  EXPECT_EQ(at_b.size(), sent);
  EXPECT_EQ(a.pool().in_flight(), 0u);
}

}  // namespace
}  // namespace rekey::wire
