// Control-plane frame tests (wire/control.h): round-trips, strict
// parsing off a real socket, slot-map/report chunking, USR fragmentation
// and reassembly, and MTU-boundary behavior at 1472/1500/9000-byte
// datagram budgets.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "crypto/keys.h"
#include "wire/control.h"

namespace rekey::wire {
namespace {

packet::NackEntry nack(std::uint8_t p, std::uint16_t b, std::uint8_t s) {
  packet::NackEntry e;
  e.parities_needed = p;
  e.block_id = b;
  e.max_shard_seen = s;
  return e;
}

// A serialized USR packet with `n` entries (realistic unicast payload).
Bytes usr_wire(std::size_t n, std::uint64_t seed) {
  packet::UsrPacket p;
  p.msg_id = 9;
  p.new_user_id = 311;
  p.max_kid = 512;
  crypto::KeyGenerator gen(seed);
  for (std::size_t i = 0; i < n; ++i) {
    packet::EncEntry e;
    e.enc_id = static_cast<std::uint32_t>(100 + i);
    const auto k = gen.next();
    std::copy(k.bytes.begin(), k.bytes.end(), e.enc.ciphertext.begin());
    e.enc.tag = static_cast<std::uint16_t>(i * 31 + 1);
    p.entries.push_back(e);
  }
  return p.serialize();
}

TEST(Control, FixedFrameRoundtrips) {
  {
    const SubFrame f{12345, 678};
    const auto r = parse_sub(serialize(f));
    ASSERT_TRUE(r);
    EXPECT_EQ(r->first_uid, f.first_uid);
    EXPECT_EQ(r->count, f.count);
    EXPECT_EQ(r->max_version, kWireV1);
  }
  {
    SubAckFrame f;
    f.group_size = 4096;
    f.expected_clients = 1000;
    f.degree = 4;
    f.block_size = 10;
    f.packet_size = 1027;
    f.batches = 25;
    const auto r = parse_sub_ack(serialize(f));
    ASSERT_TRUE(r);
    EXPECT_EQ(r->group_size, f.group_size);
    EXPECT_EQ(r->expected_clients, f.expected_clients);
    EXPECT_EQ(r->degree, f.degree);
    EXPECT_EQ(r->block_size, f.block_size);
    EXPECT_EQ(r->packet_size, f.packet_size);
    EXPECT_EQ(r->batches, f.batches);
  }
  {
    const BatchStartFrame f{7, 63};
    const auto r = parse_batch_start(serialize(f));
    ASSERT_TRUE(r);
    EXPECT_EQ(r->batch_seq, 7u);
    EXPECT_EQ(r->msg_id, 63);
  }
  {
    RoundMarkFrame f;
    f.batch_seq = 3;
    f.msg_id = 5;
    f.round = 2;
    f.phase = 1;
    const auto r = parse_round_mark(serialize(f));
    ASSERT_TRUE(r);
    EXPECT_EQ(r->batch_seq, 3u);
    EXPECT_EQ(r->msg_id, 5);
    EXPECT_EQ(r->round, 2);
    EXPECT_EQ(r->phase, 1);
  }
  {
    const BatchDoneFrame f{11, 1};
    const auto r = parse_batch_done(serialize(f));
    ASSERT_TRUE(r);
    EXPECT_EQ(r->batch_seq, 11u);
    EXPECT_EQ(r->last_batch, 1);
  }
  {
    DoneAckFrame f;
    f.batch_seq = 11;
    f.recovered = 100;
    f.via_usr = 3;
    f.gave_up = 1;
    const auto r = parse_done_ack(serialize(f));
    ASSERT_TRUE(r);
    EXPECT_EQ(r->recovered, 100u);
    EXPECT_EQ(r->via_usr, 3u);
    EXPECT_EQ(r->gave_up, 1u);
  }
  {
    const SlotMapAckFrame f{4242};
    const auto r = parse_slot_map_ack(serialize(f));
    ASSERT_TRUE(r);
    EXPECT_EQ(r->first_uid, 4242u);
  }
  EXPECT_EQ(peek_op(serialize(FinFrame{})), ControlOp::Fin);
  EXPECT_EQ(peek_op(serialize(FinAckFrame{})), ControlOp::FinAck);
}

TEST(Control, ReportRoundtripWithEntries) {
  ReportFrame f;
  f.batch_seq = 2;
  f.round = 3;
  f.phase = 0;
  f.part = 1;
  f.nparts = 4;
  f.unrecovered = 17;
  f.users.push_back(ReportUser{100, {nack(2, 0, 9), nack(1, 3, 11)}});
  f.users.push_back(ReportUser{101, {}});
  const auto w = serialize(f);
  ASSERT_TRUE(w);
  const auto r = parse_report(*w);
  ASSERT_TRUE(r);
  EXPECT_EQ(r->batch_seq, 2u);
  EXPECT_EQ(r->round, 3);
  EXPECT_EQ(r->part, 1);
  EXPECT_EQ(r->nparts, 4);
  EXPECT_EQ(r->unrecovered, 17u);
  ASSERT_EQ(r->users.size(), 2u);
  EXPECT_EQ(r->users[0].uid, 100u);
  ASSERT_EQ(r->users[0].entries.size(), 2u);
  EXPECT_EQ(r->users[0].entries[0].parities_needed, 2);
  EXPECT_EQ(r->users[0].entries[1].block_id, 3);
  EXPECT_EQ(r->users[0].entries[1].max_shard_seen, 11);
  EXPECT_TRUE(r->users[1].entries.empty());
}

TEST(Control, ParsersRejectTrailingGarbage) {
  for (const Bytes& base :
       {serialize(SubFrame{1, 2}), serialize(RoundMarkFrame{}),
        serialize(BatchDoneFrame{}), serialize(FinFrame{})}) {
    Bytes padded = base;
    padded.push_back(0x00);
    EXPECT_FALSE(parse_sub(padded) || parse_round_mark(padded) ||
                 parse_batch_done(padded));
  }
  ReportFrame f;
  f.users.push_back(ReportUser{5, {nack(1, 0, 2)}});
  Bytes padded = *serialize(f);
  padded.push_back(0xAA);
  EXPECT_FALSE(parse_report(padded).has_value());

  ReportV2Frame f2;
  f2.users.push_back(ReportUser{5, {nack(1, 0, 2)}});
  Bytes padded2 = *serialize(f2);
  padded2.push_back(0xAA);
  EXPECT_FALSE(parse_report_v2(padded2).has_value());

  SlotMapV2Frame sm2;
  sm2.base_uid = 1;
  sm2.slots = {0x12345, 0x54321};
  Bytes padded3 = *serialize(sm2);
  padded3.push_back(0x00);
  EXPECT_FALSE(parse_slot_map_v2(padded3).has_value());

  UsrFragV2Frame uf2;
  uf2.bytes = Bytes(10, 0x7E);
  Bytes padded4 = *serialize(uf2);
  padded4.push_back(0x00);
  EXPECT_FALSE(parse_usr_frag_v2(padded4).has_value());
}

TEST(Control, VersionNegotiationBytes) {
  // A v1 Sub/SubAck must serialize to the legacy byte stream exactly —
  // old and new builds interoperate through these frames.
  EXPECT_EQ(serialize(SubFrame{1, 2}).size(), 9u);
  EXPECT_EQ(serialize(SubAckFrame{}).size(), 17u);

  SubFrame sub{70000, 500};
  sub.max_version = kWireV2;
  const Bytes w = serialize(sub);
  EXPECT_EQ(w.size(), 10u);
  const auto r = parse_sub(w);
  ASSERT_TRUE(r);
  EXPECT_EQ(r->first_uid, 70000u);
  EXPECT_EQ(r->count, 500u);
  EXPECT_EQ(r->max_version, kWireV2);

  SubAckFrame ack;
  ack.group_size = 1 << 17;
  ack.version = kWireV2;
  const Bytes aw = serialize(ack);
  EXPECT_EQ(aw.size(), 18u);
  const auto ra = parse_sub_ack(aw);
  ASSERT_TRUE(ra);
  EXPECT_EQ(ra->version, kWireV2);

  // A trailing version byte claiming v1 (or v0) is not a valid encoding:
  // v1 is expressed by the legacy length, so this is garbage.
  for (const std::uint8_t bad : {std::uint8_t{0}, std::uint8_t{1}}) {
    Bytes padded = serialize(SubFrame{1, 2});
    padded.push_back(bad);
    EXPECT_FALSE(parse_sub(padded).has_value());
    Bytes apadded = serialize(SubAckFrame{});
    apadded.push_back(bad);
    EXPECT_FALSE(parse_sub_ack(apadded).has_value());
  }
}

TEST(Control, V2FrameRoundtrips) {
  {
    SlotMapV2Frame f;
    f.base_uid = 0x0012D687;                  // > 2^16 uids
    f.slots = {0x15555, 0x3FFFC, 0xFFFFFFFF};  // > 2^16 slot ids
    const auto w = serialize(f);
    ASSERT_TRUE(w);
    const auto r = parse_slot_map_v2(*w);
    ASSERT_TRUE(r);
    EXPECT_EQ(r->base_uid, f.base_uid);
    EXPECT_EQ(r->slots, f.slots);
    // The v1 parser must not accept a v2 frame (distinct ops).
    EXPECT_FALSE(parse_slot_map(*w).has_value());
  }
  {
    ReportV2Frame f;
    f.batch_seq = 7;
    f.round = 3;
    f.phase = 0;
    f.part = 70000;   // past the v1 u16 part counters
    f.nparts = 70001;
    f.unrecovered = 1 << 20;
    f.users.push_back(ReportUser{0x20000, {nack(2, 5, 7)}});
    f.users.push_back(ReportUser{0x20001, {}});
    const auto w = serialize(f);
    ASSERT_TRUE(w);
    const auto r = parse_report_v2(*w);
    ASSERT_TRUE(r);
    EXPECT_EQ(r->part, 70000u);
    EXPECT_EQ(r->nparts, 70001u);
    EXPECT_EQ(r->unrecovered, 1u << 20);
    ASSERT_EQ(r->users.size(), 2u);
    EXPECT_EQ(r->users[0].uid, 0x20000u);
    ASSERT_EQ(r->users[0].entries.size(), 1u);
    EXPECT_EQ(r->users[0].entries[0].block_id, 5);
  }
  {
    UsrFragV2Frame f;
    f.batch_seq = 2;
    f.uid = 0x1ABCDE;
    f.frag = 300;  // past the v1 u8 fragment counters
    f.nfrags = 400;
    f.bytes = Bytes(57, 0xA5);
    const auto w = serialize(f);
    ASSERT_TRUE(w);
    const auto r = parse_usr_frag_v2(*w);
    ASSERT_TRUE(r);
    EXPECT_EQ(r->uid, 0x1ABCDEu);
    EXPECT_EQ(r->frag, 300);
    EXPECT_EQ(r->nfrags, 400);
    EXPECT_EQ(r->bytes, f.bytes);
  }
}

TEST(Control, OversizeSerializersReturnErrorNotAbort) {
  // Satellite of the wide-slot change: a frame whose counters cannot be
  // represented serializes to nullopt instead of crashing the daemon.
  SlotMapFrame sm;
  sm.slots.assign(0x10000, 1);  // count field is a u16
  EXPECT_FALSE(serialize(sm).has_value());
  SlotMapV2Frame sm2;
  sm2.slots.assign(0x10000, 1);
  EXPECT_FALSE(serialize(sm2).has_value());

  ReportFrame rep;
  rep.users.push_back(ReportUser{1, {}});
  rep.users[0].entries.assign(0x100, nack(1, 0, 0));  // entry count is a u8
  EXPECT_FALSE(serialize(rep).has_value());
  ReportV2Frame rep2;
  rep2.users.push_back(ReportUser{1, {}});
  rep2.users[0].entries.assign(0x100, nack(1, 0, 0));
  EXPECT_FALSE(serialize(rep2).has_value());

  UsrFragFrame uf;
  uf.bytes.assign(0x10000, 0);  // length field is a u16
  EXPECT_FALSE(serialize(uf).has_value());
  UsrFragV2Frame uf2;
  uf2.bytes.assign(0x10000, 0);
  EXPECT_FALSE(serialize(uf2).has_value());
}

TEST(Control, ParsersNeverThrowOnRandomInput) {
  Rng rng(0xC0117701);
  for (int t = 0; t < 20000; ++t) {
    Bytes wire(rng.next_u64() % 96);
    for (auto& b : wire) b = static_cast<std::uint8_t>(rng.next_u64());
    ASSERT_NO_THROW({
      (void)peek_op(wire);
      (void)parse_sub(wire);
      (void)parse_sub_ack(wire);
      (void)parse_slot_map(wire);
      (void)parse_slot_map_v2(wire);
      (void)parse_slot_map_ack(wire);
      (void)parse_batch_start(wire);
      (void)parse_round_mark(wire);
      (void)parse_report(wire);
      (void)parse_report_v2(wire);
      (void)parse_usr_frag(wire);
      (void)parse_usr_frag_v2(wire);
      (void)parse_batch_done(wire);
      (void)parse_done_ack(wire);
    });
  }
}

TEST(Control, TruncationSweepNeverAccepts) {
  // Valid frames cut at every byte boundary, including inside the fixed
  // header: strict parsers must reject every proper prefix (control
  // frames, unlike ENC entry lists, are never self-delimiting).
  ReportFrame rep;
  rep.batch_seq = 9;
  rep.unrecovered = 2;
  rep.users.push_back(ReportUser{7, {nack(3, 1, 4), nack(1, 2, 0)}});
  rep.users.push_back(ReportUser{8, {}});
  UsrFragFrame uf;
  uf.batch_seq = 9;
  uf.uid = 7;
  uf.frag = 0;
  uf.nfrags = 2;
  uf.bytes = Bytes(33, 0x5C);
  SlotMapFrame sm;
  sm.base_uid = 40;
  sm.slots = {100, 101, 102, 103};
  ReportV2Frame rep2;
  rep2.batch_seq = 9;
  rep2.part = 70000;
  rep2.nparts = 70002;
  rep2.unrecovered = 2;
  rep2.users.push_back(ReportUser{0x17007, {nack(3, 1, 4), nack(1, 2, 0)}});
  rep2.users.push_back(ReportUser{0x17008, {}});
  UsrFragV2Frame uf2;
  uf2.batch_seq = 9;
  uf2.uid = 0x17007;
  uf2.frag = 0;
  uf2.nfrags = 300;
  uf2.bytes = Bytes(33, 0x5C);
  SlotMapV2Frame sm2;
  sm2.base_uid = 0x20028;
  sm2.slots = {0x10000, 0x10001, 0x20002, 0xFFFFFFFF};
  const std::vector<Bytes> fulls = {
      *serialize(rep),  *serialize(uf),          *serialize(sm),
      *serialize(rep2), *serialize(uf2),         *serialize(sm2),
      serialize(SubFrame{}), serialize(SubAckFrame{}),
      serialize(DoneAckFrame{})};
  for (std::size_t fi = 0; fi < fulls.size(); ++fi) {
    const Bytes& full = fulls[fi];
    for (std::size_t cut = 0; cut < full.size(); ++cut) {
      const Bytes wire(full.begin(), full.begin() + cut);
      ASSERT_NO_THROW({
        EXPECT_FALSE(parse_report(wire) || parse_usr_frag(wire) ||
                     parse_slot_map(wire) || parse_report_v2(wire) ||
                     parse_usr_frag_v2(wire) || parse_slot_map_v2(wire) ||
                     parse_sub(wire) || parse_sub_ack(wire) ||
                     parse_done_ack(wire))
            << "frame " << fi << " cut " << cut;
      });
    }
  }
  // Version-extended Sub/SubAck are the one deliberate exception: the
  // legacy 9/17-byte prefix IS a valid v1 frame (versioning is by
  // length), so truncating exactly the version byte downgrades to v1;
  // every other cut still rejects.
  SubFrame sub2;
  sub2.max_version = kWireV2;
  SubAckFrame ack2;
  ack2.version = kWireV2;
  const Bytes sub_wire = serialize(sub2);
  for (std::size_t cut = 0; cut < sub_wire.size(); ++cut) {
    const Bytes wire(sub_wire.begin(), sub_wire.begin() + cut);
    const auto r = parse_sub(wire);
    if (cut == 9) {
      ASSERT_TRUE(r);
      EXPECT_EQ(r->max_version, kWireV1);
    } else {
      EXPECT_FALSE(r) << "cut " << cut;
    }
  }
  const Bytes ack_wire = serialize(ack2);
  for (std::size_t cut = 0; cut < ack_wire.size(); ++cut) {
    const Bytes wire(ack_wire.begin(), ack_wire.begin() + cut);
    const auto r = parse_sub_ack(wire);
    if (cut == 17) {
      ASSERT_TRUE(r);
      EXPECT_EQ(r->version, kWireV1);
    } else {
      EXPECT_FALSE(r) << "cut " << cut;
    }
  }
}

TEST(Control, SlotMapChunkingCoversEveryUidOnce) {
  std::vector<std::uint16_t> slots(5000);
  for (std::size_t i = 0; i < slots.size(); ++i)
    slots[i] = static_cast<std::uint16_t>(i * 3 + 7);
  const std::size_t max_payload = 300;
  const auto frames = chunk_slot_map(1000, slots, max_payload);
  ASSERT_GT(frames.size(), 1u);
  std::vector<bool> seen(slots.size(), false);
  for (const SlotMapFrame& f : frames) {
    const auto w = serialize(f);
    ASSERT_TRUE(w);
    EXPECT_LE(w->size(), max_payload);
    const auto rt = parse_slot_map(*w);
    ASSERT_TRUE(rt);
    for (std::size_t i = 0; i < rt->slots.size(); ++i) {
      const std::size_t idx = rt->base_uid - 1000 + i;
      ASSERT_LT(idx, slots.size());
      EXPECT_FALSE(seen[idx]) << "uid covered twice";
      seen[idx] = true;
      EXPECT_EQ(rt->slots[i], slots[idx]);
    }
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
}

TEST(Control, ReportChunkingFitsBudgetAndCoversEveryUser) {
  std::vector<ReportUser> users;
  Rng rng(0xBEEF);
  for (std::uint32_t u = 0; u < 400; ++u) {
    ReportUser ru;
    ru.uid = u;
    const std::size_t n = rng.next_u64() % 5;
    for (std::size_t i = 0; i < n; ++i)
      ru.entries.push_back(
          nack(static_cast<std::uint8_t>(1 + i),
               static_cast<std::uint16_t>(u % 7), static_cast<std::uint8_t>(i)));
    users.push_back(std::move(ru));
  }
  const std::size_t max_payload = 256;
  const auto parts = chunk_report(3, 2, 0, 400, users, max_payload);
  ASSERT_GT(parts.size(), 1u);
  std::vector<bool> seen(users.size(), false);
  for (std::size_t i = 0; i < parts.size(); ++i) {
    EXPECT_EQ(parts[i].part, i);
    EXPECT_EQ(parts[i].nparts, parts.size());
    EXPECT_EQ(parts[i].unrecovered, 400u);
    const auto wire = serialize(parts[i]);
    ASSERT_TRUE(wire);
    EXPECT_LE(wire->size(), max_payload);
    const auto rt = parse_report(*wire);
    ASSERT_TRUE(rt);
    for (const ReportUser& u : rt->users) {
      ASSERT_LT(u.uid, seen.size());
      EXPECT_FALSE(seen[u.uid]);
      seen[u.uid] = true;
      EXPECT_EQ(u.entries.size(), users[u.uid].entries.size());
    }
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
}

TEST(Control, UsrFragmentationRoundtrip) {
  const Bytes usr = usr_wire(46, 0xFACE);  // a full 1027-byte packet
  for (const std::size_t max_payload : {64u, 200u, 1471u}) {
    const auto frags = fragment_usr(5, 77, usr, max_payload);
    ASSERT_GE(frags.size(), 1u);
    UsrReassembly reasm;
    std::optional<Bytes> full;
    for (const UsrFragFrame& f : frags) {
      EXPECT_LE(serialize(f)->size(), max_payload);
      EXPECT_FALSE(full.has_value());
      full = reasm.add(f);
    }
    ASSERT_TRUE(full.has_value()) << "max_payload " << max_payload;
    EXPECT_EQ(*full, usr);
  }
  // Same sweep through the wide fragmenter (2 bytes more header).
  for (const std::size_t max_payload : {64u, 200u, 1471u}) {
    const auto frags = fragment_usr_v2(5, 0x1084D, usr, max_payload);
    ASSERT_GE(frags.size(), 1u);
    UsrReassembly reasm;
    std::optional<Bytes> full;
    for (const UsrFragV2Frame& f : frags) {
      EXPECT_EQ(f.uid, 0x1084Du);
      EXPECT_LE(serialize(f)->size(), max_payload);
      EXPECT_FALSE(full.has_value());
      full = reasm.add(f);
    }
    ASSERT_TRUE(full.has_value()) << "max_payload " << max_payload;
    EXPECT_EQ(*full, usr);
  }
}

TEST(Control, FragmenterOverflowReturnsEmptyNotAbort) {
  // 300 fragments needed: past the v1 u8 counter, fine for the v2 u16.
  // The v1 fragmenter must signal the overflow by returning nothing
  // rather than constructing frames with wrapped counters.
  const std::size_t max_payload = 64;
  const std::size_t v1_chunk = max_payload - 13;  // v1 UsrFrag header
  Bytes big(v1_chunk * 300, 0x3C);
  EXPECT_TRUE(fragment_usr(1, 7, big, max_payload).empty());
  const auto frags = fragment_usr_v2(1, 7, big, max_payload);
  ASSERT_GE(frags.size(), 300u);
  UsrReassembly reasm;
  std::optional<Bytes> full;
  for (const UsrFragV2Frame& f : frags) full = reasm.add(f);
  ASSERT_TRUE(full.has_value());
  EXPECT_EQ(*full, big);
}

TEST(Control, SlotMapV2ChunkingCoversEveryUidOnce) {
  // Slot ids beyond the u16 ceiling — the population the v2 frames exist
  // for (degree-4 tree with 2^17 leaves).
  std::vector<std::uint32_t> slots(5000);
  for (std::size_t i = 0; i < slots.size(); ++i)
    slots[i] = static_cast<std::uint32_t>(0x15555 + i * 4);
  const std::size_t max_payload = 300;
  const std::uint32_t first_uid = 0x20000;
  const auto frames = chunk_slot_map_v2(first_uid, slots, max_payload);
  ASSERT_GT(frames.size(), 1u);
  std::vector<bool> seen(slots.size(), false);
  for (const SlotMapV2Frame& f : frames) {
    const auto w = serialize(f);
    ASSERT_TRUE(w);
    EXPECT_LE(w->size(), max_payload);
    const auto rt = parse_slot_map_v2(*w);
    ASSERT_TRUE(rt);
    for (std::size_t i = 0; i < rt->slots.size(); ++i) {
      const std::size_t idx = rt->base_uid - first_uid + i;
      ASSERT_LT(idx, slots.size());
      EXPECT_FALSE(seen[idx]) << "uid covered twice";
      seen[idx] = true;
      EXPECT_EQ(rt->slots[i], slots[idx]);
    }
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
}

TEST(Control, ReportV2ChunkingCoversEveryUserAndV1Overflows) {
  // 70000 unrecovered users at a tiny payload budget: the part counter
  // passes the v1 u16 ceiling, so v1 chunking must return empty while v2
  // covers every user exactly once.
  std::vector<ReportUser> users(70000);
  for (std::uint32_t u = 0; u < users.size(); ++u) {
    users[u].uid = 0x10000 + u;
    users[u].entries.push_back(nack(1, 0, 0));
  }
  // 34 bytes fits exactly one one-entry user per v2 part (24-byte header
  // budget + 5-byte user + 4-byte entry), forcing 70000 parts.
  const std::size_t max_payload = 34;
  EXPECT_TRUE(chunk_report(1, 1, 0, 70000, users, max_payload).empty());
  const auto parts =
      chunk_report_v2(1, 1, 0, 70000, users, max_payload);
  ASSERT_GT(parts.size(), 0xFFFFu);
  std::vector<bool> seen(users.size(), false);
  std::size_t covered = 0;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    EXPECT_EQ(parts[i].part, i);
    EXPECT_EQ(parts[i].nparts, parts.size());
    const auto w = serialize(parts[i]);
    ASSERT_TRUE(w);
    ASSERT_LE(w->size(), max_payload);
    for (const ReportUser& u : parts[i].users) {
      const std::size_t idx = u.uid - 0x10000;
      ASSERT_LT(idx, seen.size());
      ASSERT_FALSE(seen[idx]);
      seen[idx] = true;
      ++covered;
    }
  }
  EXPECT_EQ(covered, users.size());
}

TEST(Control, UsrReassemblyHandlesDuplicatesAndReordering) {
  const Bytes usr = usr_wire(20, 0xD1CE);
  auto frags = fragment_usr(1, 9, usr, 100);
  ASSERT_GE(frags.size(), 3u);
  UsrReassembly reasm;
  // Deliver in reverse, each fragment twice; completion exactly once, on
  // the final missing fragment.
  std::optional<Bytes> full;
  for (std::size_t i = frags.size(); i-- > 0;) {
    EXPECT_FALSE(reasm.add(frags[i == 0 ? frags.size() - 1 : i]).has_value());
    const auto r = reasm.add(frags[i]);
    if (i == 0) {
      ASSERT_TRUE(r.has_value());
      full = r;
    } else {
      EXPECT_FALSE(r.has_value());
    }
  }
  EXPECT_EQ(*full, usr);

  // A fresh uid with a different nfrags claim must not mix streams.
  auto other = fragment_usr(1, 9, usr_wire(4, 0xD2), 100);
  EXPECT_FALSE(reasm.add(other[0]).has_value());
}

TEST(Control, UsrFragmentationAtMtuBoundaries) {
  // Real deployment MTU budgets: 1472 (ethernet, pre-channel-byte 1473
  // payload would overflow), 1500, and 9000 (jumbo). max_payload models
  // mtu - 28 (IP+UDP) - 1 (channel byte).
  for (const std::size_t mtu : {1472u, 1500u, 9000u}) {
    const std::size_t max_payload = mtu - 28 - 1;
    // A USR wire exactly at, one under, and one over the per-fragment
    // byte budget, plus a jumbo-sized one.
    const std::size_t chunk = max_payload - 13;  // UsrFrag header
    for (const std::size_t wire_size :
         {chunk - 1, chunk, chunk + 1, 3 * chunk + 5}) {
      Bytes usr(wire_size);
      Rng rng(wire_size);
      for (auto& b : usr) b = static_cast<std::uint8_t>(rng.next_u64());
      const auto frags = fragment_usr(0, 1, usr, max_payload);
      const std::size_t expect =
          wire_size <= chunk ? 1 : (wire_size + chunk - 1) / chunk;
      EXPECT_EQ(frags.size(), expect) << "mtu " << mtu << " sz " << wire_size;
      UsrReassembly reasm;
      std::optional<Bytes> full;
      for (const UsrFragFrame& f : frags) {
        // No fragment may exceed the datagram budget — this is the
        // "rekeyd never emits an over-MTU datagram" invariant.
        EXPECT_LE(serialize(f)->size(), max_payload);
        full = reasm.add(f);
      }
      ASSERT_TRUE(full.has_value());
      EXPECT_EQ(*full, usr);
    }
  }
}

TEST(Control, BatchStartEpochRoundtripAndLegacyBytes) {
  // epoch == 0 serializes to the legacy 6-byte frame — byte-identical to
  // a pre-replication writer, so every existing golden stays bit-exact.
  const BatchStartFrame legacy{7, 7 % 64, 0};
  const Bytes legacy_wire = serialize(legacy);
  EXPECT_EQ(legacy_wire.size(), 6u);
  {
    const auto r = parse_batch_start(legacy_wire);
    ASSERT_TRUE(r);
    EXPECT_EQ(r->batch_seq, 7u);
    EXPECT_EQ(r->epoch, 0u);
  }
  // A nonzero epoch appends exactly four bytes and round-trips.
  const BatchStartFrame fenced{7, 7 % 64, 3};
  const Bytes fenced_wire = serialize(fenced);
  EXPECT_EQ(fenced_wire.size(), 10u);
  EXPECT_TRUE(std::equal(legacy_wire.begin(), legacy_wire.end(),
                         fenced_wire.begin()));
  {
    const auto r = parse_batch_start(fenced_wire);
    ASSERT_TRUE(r);
    EXPECT_EQ(r->batch_seq, 7u);
    EXPECT_EQ(r->epoch, 3u);
  }
}

TEST(Control, BatchStartEpochTruncationDowngradesLikeSub) {
  // Versioning-by-length, the Sub/SubAck rule: cutting exactly the epoch
  // field yields the valid legacy frame (epoch 0); every other cut
  // rejects. And the long form announcing the default (epoch == 0 in 10
  // bytes) is not a frame any writer emits, so the parser refuses it.
  const Bytes wire = serialize(BatchStartFrame{9, 9, 42});
  ASSERT_EQ(wire.size(), 10u);
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    const Bytes prefix(wire.begin(), wire.begin() + cut);
    const auto r = parse_batch_start(prefix);
    if (cut == 6) {
      ASSERT_TRUE(r);
      EXPECT_EQ(r->batch_seq, 9u);
      EXPECT_EQ(r->epoch, 0u);
    } else {
      EXPECT_FALSE(r) << "cut " << cut;
    }
  }
  Bytes zero_epoch = wire;
  zero_epoch[6] = zero_epoch[7] = zero_epoch[8] = zero_epoch[9] = 0;
  EXPECT_FALSE(parse_batch_start(zero_epoch));
}

TEST(Control, ReplicationFrameRoundtrips) {
  {
    const SnapAckFrame f{0xDEADBEEF};
    const auto r = parse_snap_ack(serialize(f));
    ASSERT_TRUE(r);
    EXPECT_EQ(r->snap_seq, 0xDEADBEEFu);
  }
  {
    const HeartbeatFrame f{5, 17};
    const auto r = parse_heartbeat(serialize(f));
    ASSERT_TRUE(r);
    EXPECT_EQ(r->epoch, 5u);
    EXPECT_EQ(r->next_batch, 17u);
  }
  {
    const ResubFrame f{4096, 512, 2, 9, 0x123456789ABCull};
    const auto r = parse_resub(serialize(f));
    ASSERT_TRUE(r);
    EXPECT_EQ(r->first_uid, 4096u);
    EXPECT_EQ(r->count, 512u);
    EXPECT_EQ(r->epoch, 2u);
    EXPECT_EQ(r->done_seq, 9u);
    EXPECT_EQ(r->first_id, 0x123456789ABCull);
  }
  {
    SnapChunkFrame f;
    f.snap_seq = 3;
    f.part = 1;
    f.nparts = 4;
    f.bytes = Bytes(100, 0xA5);
    const auto wire = serialize(f);
    ASSERT_TRUE(wire.has_value());
    const auto r = parse_snap_chunk(*wire);
    ASSERT_TRUE(r);
    EXPECT_EQ(r->snap_seq, 3u);
    EXPECT_EQ(r->part, 1u);
    EXPECT_EQ(r->nparts, 4u);
    EXPECT_EQ(r->bytes, f.bytes);
  }
  // Oversize chunk payload is a serializer error, not an abort.
  {
    SnapChunkFrame f;
    f.bytes = Bytes(0x10000, 0);  // one past the u16 length field
    EXPECT_FALSE(serialize(f).has_value());
  }
}

TEST(Control, ReplicationFrameTruncationSweepNeverAccepts) {
  SnapChunkFrame chunk;
  chunk.snap_seq = 3;
  chunk.part = 0;
  chunk.nparts = 2;
  chunk.bytes = Bytes(25, 0x3C);
  const std::vector<Bytes> fulls = {
      *serialize(chunk), serialize(SnapAckFrame{1}),
      serialize(HeartbeatFrame{1, 2}), serialize(ResubFrame{1, 2, 3, 4, 5})};
  for (std::size_t fi = 0; fi < fulls.size(); ++fi) {
    const Bytes& full = fulls[fi];
    for (std::size_t cut = 0; cut < full.size(); ++cut) {
      const Bytes wire(full.begin(), full.begin() + cut);
      ASSERT_NO_THROW({
        EXPECT_FALSE(parse_snap_chunk(wire) || parse_snap_ack(wire) ||
                     parse_heartbeat(wire) || parse_resub(wire))
            << "frame " << fi << " cut " << cut;
      });
    }
  }
  // Structural nonsense inside an intact frame: zero nparts, part out of
  // range, and a length field disagreeing with the remaining bytes.
  SnapChunkFrame bad = chunk;
  bad.nparts = 0;
  bad.part = 0;
  EXPECT_FALSE(serialize(bad).has_value() &&
               parse_snap_chunk(*serialize(bad)));
  Bytes wire = *serialize(chunk);
  wire.push_back(0x00);  // trailing garbage after the declared length
  EXPECT_FALSE(parse_snap_chunk(wire));
}

TEST(Control, ChunkSnapshotSplitsAndReassembles) {
  Bytes blob(5000);
  for (std::size_t i = 0; i < blob.size(); ++i)
    blob[i] = static_cast<std::uint8_t>(i * 13 + 5);
  const auto frames = chunk_snapshot(11, blob, 1471);
  ASSERT_GT(frames.size(), 1u);
  std::size_t covered = 0;
  for (const auto& f : frames) {
    EXPECT_EQ(f.snap_seq, 11u);
    EXPECT_EQ(f.nparts, frames.size());
    ASSERT_TRUE(serialize(f).has_value());
    EXPECT_LE(serialize(f)->size(), 1471u);
    covered += f.bytes.size();
  }
  EXPECT_EQ(covered, blob.size());

  // In-order reassembly returns the blob on the last chunk.
  SnapshotReassembly reasm;
  for (std::size_t i = 0; i + 1 < frames.size(); ++i)
    EXPECT_FALSE(reasm.add(frames[i]).has_value());
  const auto full = reasm.add(frames.back());
  ASSERT_TRUE(full.has_value());
  EXPECT_EQ(*full, blob);
  // Duplicates of a completed sequence are ignored, not re-delivered.
  EXPECT_FALSE(reasm.add(frames[0]).has_value());

  // An empty blob still travels (one empty chunk) — a snapshot is never
  // simply absent.
  const auto empty_frames = chunk_snapshot(12, Bytes{}, 1471);
  ASSERT_EQ(empty_frames.size(), 1u);
  SnapshotReassembly reasm2;
  const auto empty_full = reasm2.add(empty_frames[0]);
  ASSERT_TRUE(empty_full.has_value());
  EXPECT_TRUE(empty_full->empty());

  // A budget that cannot fit header + 1 byte is an error, not an abort.
  EXPECT_TRUE(chunk_snapshot(13, blob, 10).empty());
}

TEST(Control, SnapshotReassemblyNewestSeqWins) {
  Bytes old_blob(3000, 0x11);
  Bytes new_blob(3000);
  for (std::size_t i = 0; i < new_blob.size(); ++i)
    new_blob[i] = static_cast<std::uint8_t>(i);
  const auto old_frames = chunk_snapshot(5, old_blob, 600);
  const auto new_frames = chunk_snapshot(6, new_blob, 600);
  ASSERT_GT(old_frames.size(), 2u);

  SnapshotReassembly reasm;
  // Partial old snapshot...
  EXPECT_FALSE(reasm.add(old_frames[0]).has_value());
  EXPECT_FALSE(reasm.add(old_frames[1]).has_value());
  // ...superseded by the newer sequence, out of order and with
  // duplicates.
  for (std::size_t i = new_frames.size(); i-- > 1;)
    EXPECT_FALSE(reasm.add(new_frames[i]).has_value());
  EXPECT_FALSE(reasm.add(new_frames[2]).has_value());  // duplicate part
  // A stale chunk of the abandoned sequence is ignored mid-reassembly.
  EXPECT_FALSE(reasm.add(old_frames[2]).has_value());
  const auto full = reasm.add(new_frames[0]);
  ASSERT_TRUE(full.has_value());
  EXPECT_EQ(*full, new_blob);
  // After completion, stale chunks stay ignored.
  EXPECT_FALSE(reasm.add(old_frames[0]).has_value());

  // clear() forgets everything, including the completed sequence.
  reasm.clear();
  SnapshotReassembly fresh;
  for (std::size_t i = 0; i + 1 < new_frames.size(); ++i) {
    EXPECT_FALSE(reasm.add(new_frames[i]).has_value());
    EXPECT_FALSE(fresh.add(new_frames[i]).has_value());
  }
  EXPECT_TRUE(reasm.add(new_frames.back()).has_value());
  EXPECT_TRUE(fresh.add(new_frames.back()).has_value());

  // Hostile nparts past the chunk cap must not size a huge vector.
  SnapChunkFrame hostile;
  hostile.snap_seq = 99;
  hostile.part = 0;
  hostile.nparts = 0xFFFFFFFF;
  EXPECT_FALSE(SnapshotReassembly{}.add(hostile).has_value());
}

}  // namespace
}  // namespace rekey::wire
