// Control-plane frame tests (wire/control.h): round-trips, strict
// parsing off a real socket, slot-map/report chunking, USR fragmentation
// and reassembly, and MTU-boundary behavior at 1472/1500/9000-byte
// datagram budgets.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "crypto/keys.h"
#include "wire/control.h"

namespace rekey::wire {
namespace {

packet::NackEntry nack(std::uint8_t p, std::uint16_t b, std::uint8_t s) {
  packet::NackEntry e;
  e.parities_needed = p;
  e.block_id = b;
  e.max_shard_seen = s;
  return e;
}

// A serialized USR packet with `n` entries (realistic unicast payload).
Bytes usr_wire(std::size_t n, std::uint64_t seed) {
  packet::UsrPacket p;
  p.msg_id = 9;
  p.new_user_id = 311;
  p.max_kid = 512;
  crypto::KeyGenerator gen(seed);
  for (std::size_t i = 0; i < n; ++i) {
    packet::EncEntry e;
    e.enc_id = static_cast<std::uint32_t>(100 + i);
    const auto k = gen.next();
    std::copy(k.bytes.begin(), k.bytes.end(), e.enc.ciphertext.begin());
    e.enc.tag = static_cast<std::uint16_t>(i * 31 + 1);
    p.entries.push_back(e);
  }
  return p.serialize();
}

TEST(Control, FixedFrameRoundtrips) {
  {
    const SubFrame f{12345, 678};
    const auto r = parse_sub(serialize(f));
    ASSERT_TRUE(r);
    EXPECT_EQ(r->first_uid, f.first_uid);
    EXPECT_EQ(r->count, f.count);
  }
  {
    SubAckFrame f;
    f.group_size = 4096;
    f.expected_clients = 1000;
    f.degree = 4;
    f.block_size = 10;
    f.packet_size = 1027;
    f.batches = 25;
    const auto r = parse_sub_ack(serialize(f));
    ASSERT_TRUE(r);
    EXPECT_EQ(r->group_size, f.group_size);
    EXPECT_EQ(r->expected_clients, f.expected_clients);
    EXPECT_EQ(r->degree, f.degree);
    EXPECT_EQ(r->block_size, f.block_size);
    EXPECT_EQ(r->packet_size, f.packet_size);
    EXPECT_EQ(r->batches, f.batches);
  }
  {
    const BatchStartFrame f{7, 63};
    const auto r = parse_batch_start(serialize(f));
    ASSERT_TRUE(r);
    EXPECT_EQ(r->batch_seq, 7u);
    EXPECT_EQ(r->msg_id, 63);
  }
  {
    RoundMarkFrame f;
    f.batch_seq = 3;
    f.msg_id = 5;
    f.round = 2;
    f.phase = 1;
    const auto r = parse_round_mark(serialize(f));
    ASSERT_TRUE(r);
    EXPECT_EQ(r->batch_seq, 3u);
    EXPECT_EQ(r->msg_id, 5);
    EXPECT_EQ(r->round, 2);
    EXPECT_EQ(r->phase, 1);
  }
  {
    const BatchDoneFrame f{11, 1};
    const auto r = parse_batch_done(serialize(f));
    ASSERT_TRUE(r);
    EXPECT_EQ(r->batch_seq, 11u);
    EXPECT_EQ(r->last_batch, 1);
  }
  {
    DoneAckFrame f;
    f.batch_seq = 11;
    f.recovered = 100;
    f.via_usr = 3;
    f.gave_up = 1;
    const auto r = parse_done_ack(serialize(f));
    ASSERT_TRUE(r);
    EXPECT_EQ(r->recovered, 100u);
    EXPECT_EQ(r->via_usr, 3u);
    EXPECT_EQ(r->gave_up, 1u);
  }
  {
    const SlotMapAckFrame f{4242};
    const auto r = parse_slot_map_ack(serialize(f));
    ASSERT_TRUE(r);
    EXPECT_EQ(r->first_uid, 4242u);
  }
  EXPECT_EQ(peek_op(serialize(FinFrame{})), ControlOp::Fin);
  EXPECT_EQ(peek_op(serialize(FinAckFrame{})), ControlOp::FinAck);
}

TEST(Control, ReportRoundtripWithEntries) {
  ReportFrame f;
  f.batch_seq = 2;
  f.round = 3;
  f.phase = 0;
  f.part = 1;
  f.nparts = 4;
  f.unrecovered = 17;
  f.users.push_back(ReportUser{100, {nack(2, 0, 9), nack(1, 3, 11)}});
  f.users.push_back(ReportUser{101, {}});
  const auto r = parse_report(serialize(f));
  ASSERT_TRUE(r);
  EXPECT_EQ(r->batch_seq, 2u);
  EXPECT_EQ(r->round, 3);
  EXPECT_EQ(r->part, 1);
  EXPECT_EQ(r->nparts, 4);
  EXPECT_EQ(r->unrecovered, 17u);
  ASSERT_EQ(r->users.size(), 2u);
  EXPECT_EQ(r->users[0].uid, 100u);
  ASSERT_EQ(r->users[0].entries.size(), 2u);
  EXPECT_EQ(r->users[0].entries[0].parities_needed, 2);
  EXPECT_EQ(r->users[0].entries[1].block_id, 3);
  EXPECT_EQ(r->users[0].entries[1].max_shard_seen, 11);
  EXPECT_TRUE(r->users[1].entries.empty());
}

TEST(Control, ParsersRejectTrailingGarbage) {
  for (const Bytes& base :
       {serialize(SubFrame{1, 2}), serialize(RoundMarkFrame{}),
        serialize(BatchDoneFrame{}), serialize(FinFrame{})}) {
    Bytes padded = base;
    padded.push_back(0x00);
    EXPECT_FALSE(parse_sub(padded) || parse_round_mark(padded) ||
                 parse_batch_done(padded));
  }
  ReportFrame f;
  f.users.push_back(ReportUser{5, {nack(1, 0, 2)}});
  Bytes padded = serialize(f);
  padded.push_back(0xAA);
  EXPECT_FALSE(parse_report(padded).has_value());
}

TEST(Control, ParsersNeverThrowOnRandomInput) {
  Rng rng(0xC0117701);
  for (int t = 0; t < 20000; ++t) {
    Bytes wire(rng.next_u64() % 96);
    for (auto& b : wire) b = static_cast<std::uint8_t>(rng.next_u64());
    ASSERT_NO_THROW({
      (void)peek_op(wire);
      (void)parse_sub(wire);
      (void)parse_sub_ack(wire);
      (void)parse_slot_map(wire);
      (void)parse_slot_map_ack(wire);
      (void)parse_batch_start(wire);
      (void)parse_round_mark(wire);
      (void)parse_report(wire);
      (void)parse_usr_frag(wire);
      (void)parse_batch_done(wire);
      (void)parse_done_ack(wire);
    });
  }
}

TEST(Control, TruncationSweepNeverAccepts) {
  // Valid frames cut at every byte boundary, including inside the fixed
  // header: strict parsers must reject every proper prefix (control
  // frames, unlike ENC entry lists, are never self-delimiting).
  ReportFrame rep;
  rep.batch_seq = 9;
  rep.unrecovered = 2;
  rep.users.push_back(ReportUser{7, {nack(3, 1, 4), nack(1, 2, 0)}});
  rep.users.push_back(ReportUser{8, {}});
  UsrFragFrame uf;
  uf.batch_seq = 9;
  uf.uid = 7;
  uf.frag = 0;
  uf.nfrags = 2;
  uf.bytes = Bytes(33, 0x5C);
  SlotMapFrame sm;
  sm.base_uid = 40;
  sm.slots = {100, 101, 102, 103};
  for (const Bytes& full :
       {serialize(rep), serialize(uf), serialize(sm), serialize(SubFrame{}),
        serialize(SubAckFrame{}), serialize(DoneAckFrame{})}) {
    for (std::size_t cut = 0; cut < full.size(); ++cut) {
      const Bytes wire(full.begin(), full.begin() + cut);
      ASSERT_NO_THROW({
        EXPECT_FALSE(parse_report(wire) || parse_usr_frag(wire) ||
                     parse_slot_map(wire) || parse_sub(wire) ||
                     parse_sub_ack(wire) || parse_done_ack(wire))
            << "cut " << cut;
      });
    }
  }
}

TEST(Control, SlotMapChunkingCoversEveryUidOnce) {
  std::vector<std::uint16_t> slots(5000);
  for (std::size_t i = 0; i < slots.size(); ++i)
    slots[i] = static_cast<std::uint16_t>(i * 3 + 7);
  const std::size_t max_payload = 300;
  const auto frames = chunk_slot_map(1000, slots, max_payload);
  ASSERT_GT(frames.size(), 1u);
  std::vector<bool> seen(slots.size(), false);
  for (const SlotMapFrame& f : frames) {
    EXPECT_LE(serialize(f).size(), max_payload);
    const auto rt = parse_slot_map(serialize(f));
    ASSERT_TRUE(rt);
    for (std::size_t i = 0; i < rt->slots.size(); ++i) {
      const std::size_t idx = rt->base_uid - 1000 + i;
      ASSERT_LT(idx, slots.size());
      EXPECT_FALSE(seen[idx]) << "uid covered twice";
      seen[idx] = true;
      EXPECT_EQ(rt->slots[i], slots[idx]);
    }
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
}

TEST(Control, ReportChunkingFitsBudgetAndCoversEveryUser) {
  std::vector<ReportUser> users;
  Rng rng(0xBEEF);
  for (std::uint32_t u = 0; u < 400; ++u) {
    ReportUser ru;
    ru.uid = u;
    const std::size_t n = rng.next_u64() % 5;
    for (std::size_t i = 0; i < n; ++i)
      ru.entries.push_back(
          nack(static_cast<std::uint8_t>(1 + i),
               static_cast<std::uint16_t>(u % 7), static_cast<std::uint8_t>(i)));
    users.push_back(std::move(ru));
  }
  const std::size_t max_payload = 256;
  const auto parts = chunk_report(3, 2, 0, 400, users, max_payload);
  ASSERT_GT(parts.size(), 1u);
  std::vector<bool> seen(users.size(), false);
  for (std::size_t i = 0; i < parts.size(); ++i) {
    EXPECT_EQ(parts[i].part, i);
    EXPECT_EQ(parts[i].nparts, parts.size());
    EXPECT_EQ(parts[i].unrecovered, 400u);
    const Bytes wire = serialize(parts[i]);
    EXPECT_LE(wire.size(), max_payload);
    const auto rt = parse_report(wire);
    ASSERT_TRUE(rt);
    for (const ReportUser& u : rt->users) {
      ASSERT_LT(u.uid, seen.size());
      EXPECT_FALSE(seen[u.uid]);
      seen[u.uid] = true;
      EXPECT_EQ(u.entries.size(), users[u.uid].entries.size());
    }
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
}

TEST(Control, UsrFragmentationRoundtrip) {
  const Bytes usr = usr_wire(46, 0xFACE);  // a full 1027-byte packet
  for (const std::size_t max_payload : {64u, 200u, 1471u}) {
    const auto frags = fragment_usr(5, 77, usr, max_payload);
    ASSERT_GE(frags.size(), 1u);
    UsrReassembly reasm;
    std::optional<Bytes> full;
    for (const UsrFragFrame& f : frags) {
      EXPECT_LE(serialize(f).size(), max_payload);
      EXPECT_FALSE(full.has_value());
      full = reasm.add(f);
    }
    ASSERT_TRUE(full.has_value()) << "max_payload " << max_payload;
    EXPECT_EQ(*full, usr);
  }
}

TEST(Control, UsrReassemblyHandlesDuplicatesAndReordering) {
  const Bytes usr = usr_wire(20, 0xD1CE);
  auto frags = fragment_usr(1, 9, usr, 100);
  ASSERT_GE(frags.size(), 3u);
  UsrReassembly reasm;
  // Deliver in reverse, each fragment twice; completion exactly once, on
  // the final missing fragment.
  std::optional<Bytes> full;
  for (std::size_t i = frags.size(); i-- > 0;) {
    EXPECT_FALSE(reasm.add(frags[i == 0 ? frags.size() - 1 : i]).has_value());
    const auto r = reasm.add(frags[i]);
    if (i == 0) {
      ASSERT_TRUE(r.has_value());
      full = r;
    } else {
      EXPECT_FALSE(r.has_value());
    }
  }
  EXPECT_EQ(*full, usr);

  // A fresh uid with a different nfrags claim must not mix streams.
  auto other = fragment_usr(1, 9, usr_wire(4, 0xD2), 100);
  EXPECT_FALSE(reasm.add(other[0]).has_value());
}

TEST(Control, UsrFragmentationAtMtuBoundaries) {
  // Real deployment MTU budgets: 1472 (ethernet, pre-channel-byte 1473
  // payload would overflow), 1500, and 9000 (jumbo). max_payload models
  // mtu - 28 (IP+UDP) - 1 (channel byte).
  for (const std::size_t mtu : {1472u, 1500u, 9000u}) {
    const std::size_t max_payload = mtu - 28 - 1;
    // A USR wire exactly at, one under, and one over the per-fragment
    // byte budget, plus a jumbo-sized one.
    const std::size_t chunk = max_payload - 13;  // UsrFrag header
    for (const std::size_t wire_size :
         {chunk - 1, chunk, chunk + 1, 3 * chunk + 5}) {
      Bytes usr(wire_size);
      Rng rng(wire_size);
      for (auto& b : usr) b = static_cast<std::uint8_t>(rng.next_u64());
      const auto frags = fragment_usr(0, 1, usr, max_payload);
      const std::size_t expect =
          wire_size <= chunk ? 1 : (wire_size + chunk - 1) / chunk;
      EXPECT_EQ(frags.size(), expect) << "mtu " << mtu << " sz " << wire_size;
      UsrReassembly reasm;
      std::optional<Bytes> full;
      for (const UsrFragFrame& f : frags) {
        // No fragment may exceed the datagram budget — this is the
        // "rekeyd never emits an over-MTU datagram" invariant.
        EXPECT_LE(serialize(f).size(), max_payload);
        full = reasm.add(f);
      }
      ASSERT_TRUE(full.has_value());
      EXPECT_EQ(*full, usr);
    }
  }
}

}  // namespace
}  // namespace rekey::wire
