// Metrics arithmetic tests: bandwidth overhead, per-user round averages,
// distributions, and aggregation across messages.
#include <gtest/gtest.h>

#include "transport/metrics.h"

namespace rekey::transport {
namespace {

MessageMetrics sample_message() {
  MessageMetrics m;
  m.enc_packets = 100;
  m.slots = 110;
  m.multicast_sent = 150;
  m.users = 1000;
  m.recovered_in_round[1] = 950;
  m.recovered_in_round[2] = 40;
  m.multicast_rounds = 2;
  m.unicast_users = 10;
  return m;
}

TEST(MessageMetrics, BandwidthOverhead) {
  const auto m = sample_message();
  EXPECT_DOUBLE_EQ(m.bandwidth_overhead(), 1.5);
  MessageMetrics empty;
  EXPECT_DOUBLE_EQ(empty.bandwidth_overhead(), 0.0);
}

TEST(MessageMetrics, TotalBandwidthOverheadCountsUsrBytes) {
  auto m = sample_message();
  m.packet_size = 1000;
  m.usr_packets = 4;
  m.usr_bytes = 2000;  // 2 packet-equivalents
  // (150 multicast + 2000/1000) / 100 ENC = 1.52.
  EXPECT_DOUBLE_EQ(m.total_bandwidth_overhead(), 1.52);
  // Without USR traffic the two metrics agree.
  m.usr_bytes = 0;
  EXPECT_DOUBLE_EQ(m.total_bandwidth_overhead(), m.bandwidth_overhead());
  // Unknown packet size: fall back to multicast-only rather than divide
  // by zero.
  m.usr_bytes = 2000;
  m.packet_size = 0;
  EXPECT_DOUBLE_EQ(m.total_bandwidth_overhead(), m.bandwidth_overhead());
  MessageMetrics empty;
  EXPECT_DOUBLE_EQ(empty.total_bandwidth_overhead(), 0.0);
}

TEST(RunMetrics, MeanTotalBandwidthOverhead) {
  RunMetrics run;
  auto a = sample_message();
  a.packet_size = 1000;
  a.usr_bytes = 2000;  // total overhead 1.52
  auto b = sample_message();
  b.packet_size = 1000;  // no USR bytes: 1.5
  run.messages = {a, b};
  EXPECT_DOUBLE_EQ(run.mean_total_bandwidth_overhead(), (1.52 + 1.5) / 2);
  RunMetrics empty;
  EXPECT_DOUBLE_EQ(empty.mean_total_bandwidth_overhead(), 0.0);
}

TEST(MessageMetrics, MeanUserRounds) {
  const auto m = sample_message();
  // (950*1 + 40*2 + 10*3) / 1000 = 1.06.
  EXPECT_DOUBLE_EQ(m.mean_user_rounds(), 1.06);
}

TEST(MessageMetrics, MeanUserRoundsNoUsers) {
  MessageMetrics m;
  EXPECT_DOUBLE_EQ(m.mean_user_rounds(), 0.0);
}

TEST(MessageMetrics, RoundsToAll) {
  auto m = sample_message();
  EXPECT_EQ(m.rounds_to_all(), 3);  // unicast bucket counts as rounds+1
  m.unicast_users = 0;
  EXPECT_EQ(m.rounds_to_all(), 2);
  m.recovered_in_round.erase(2);
  EXPECT_EQ(m.rounds_to_all(), 1);
}

TEST(RunMetrics, MeansAcrossMessages) {
  RunMetrics run;
  auto a = sample_message();
  auto b = sample_message();
  b.multicast_sent = 300;  // overhead 3.0
  b.round1_nacks = 40;
  a.round1_nacks = 20;
  run.messages = {a, b};
  EXPECT_DOUBLE_EQ(run.mean_bandwidth_overhead(), (1.5 + 3.0) / 2);
  EXPECT_DOUBLE_EQ(run.mean_round1_nacks(), 30.0);
  EXPECT_DOUBLE_EQ(run.mean_rounds_to_all(), 3.0);
  EXPECT_DOUBLE_EQ(run.mean_user_rounds(), 1.06);
}

TEST(RunMetrics, EmptyRun) {
  RunMetrics run;
  EXPECT_DOUBLE_EQ(run.mean_bandwidth_overhead(), 0.0);
  EXPECT_DOUBLE_EQ(run.mean_round1_nacks(), 0.0);
  EXPECT_TRUE(run.round_distribution().empty());
  EXPECT_EQ(run.total_deadline_misses(), 0u);
}

TEST(RunMetrics, RoundDistributionNormalized) {
  RunMetrics run;
  run.messages = {sample_message(), sample_message()};
  const auto dist = run.round_distribution();
  double total = 0;
  for (const auto& [round, frac] : dist) total += frac;
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_NEAR(dist.at(1), 0.95, 1e-12);
  EXPECT_NEAR(dist.at(3), 0.01, 1e-12);  // unicast bucket
}

TEST(RunMetrics, DeadlineMissTotals) {
  RunMetrics run;
  auto a = sample_message();
  a.deadline_misses = 3;
  auto b = sample_message();
  b.deadline_misses = 7;
  run.messages = {a, b};
  EXPECT_EQ(run.total_deadline_misses(), 10u);
}

}  // namespace
}  // namespace rekey::transport
