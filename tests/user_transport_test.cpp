// User (receiver) protocol tests: recovery via own packet, via FEC
// decoding, via USR; block estimation integration; NACK generation.
#include <gtest/gtest.h>

#include "common/ensure.h"
#include "transport/server.h"
#include "transport/user.h"
#include "transport/workload.h"

namespace rekey::transport {
namespace {

struct Rig {
  GeneratedMessage msg;
  ProtocolConfig cfg;
  std::unique_ptr<ServerTransport> server;
  PacketPool pool;

  // Large enough that the message spans many ENC packets and blocks, so a
  // user's own packet is one of many.
  explicit Rig(std::size_t n = 512, std::size_t leaves = 128,
               std::size_t k = 5, int proactive = 0,
               std::uint64_t seed = 1) {
    WorkloadConfig wc;
    wc.group_size = n;
    wc.leaves = leaves;
    msg = generate_message(wc, seed, /*msg_id=*/1);
    cfg.block_size = k;
    cfg.validate();
    server = std::make_unique<ServerTransport>(cfg, msg.payload,
                                               msg.assignment, proactive,
                                               /*msg_id=*/1);
  }

  // Send round-1 packets into the pool; returns indices.
  std::vector<std::size_t> send_round(int round) {
    std::vector<std::size_t> idx;
    for (Bytes& w : server->round_packets(round)) {
      idx.push_back(pool.size());
      pool.push_back(std::move(w));
    }
    return idx;
  }

  UserTransport user(std::size_t i) const {
    return UserTransport(msg.old_ids[i], cfg.block_size, msg.payload.degree,
                         &pool);
  }
};

TEST(UserTransport, OwnPacketMeansImmediateRecovery) {
  Rig rig;
  const auto idx = rig.send_round(1);
  UserTransport u = rig.user(0);
  for (const auto i : idx) u.on_packet(i, 1);
  EXPECT_TRUE(u.recovered());
  EXPECT_EQ(u.recovery_round(), 1);
  EXPECT_FALSE(u.entries().empty());
  EXPECT_TRUE(u.end_of_round(1).empty());
}

TEST(UserTransport, AppliedEntriesYieldGroupKey) {
  Rig rig;
  const auto idx = rig.send_round(1);
  UserTransport u = rig.user(3);
  for (const auto i : idx) u.on_packet(i, 1);
  ASSERT_TRUE(u.recovered());
  // The entries must include every encryption this user needs.
  const auto& needs = rig.msg.payload.user_needs.at(u.current_id());
  for (const auto need_idx : needs) {
    const auto want = rig.msg.payload.encryptions[need_idx].enc_id;
    bool found = false;
    for (const auto& e : u.entries()) found |= e.enc_id == want;
    EXPECT_TRUE(found) << "missing encryption " << want;
  }
}

TEST(UserTransport, RecoversViaFecWhenOwnPacketLost) {
  Rig rig(512, 128, 5, /*proactive=*/2);
  const auto idx = rig.send_round(1);
  UserTransport u = rig.user(5);
  // Find and drop the user's own packet; deliver everything else.
  for (const auto i : idx) {
    const auto h = packet::parse_enc_header(rig.pool[i]);
    if (h && h->frm_id <= rig.msg.old_ids[5] &&
        rig.msg.old_ids[5] <= h->to_id)
      continue;  // lost
    u.on_packet(i, 1);
  }
  EXPECT_FALSE(u.recovered());  // not before round end
  EXPECT_TRUE(u.end_of_round(1).empty());
  EXPECT_TRUE(u.recovered());  // decoded at round end
  EXPECT_FALSE(u.entries().empty());
}

TEST(UserTransport, NacksMissingParitiesForItsBlock) {
  Rig rig(512, 128, 5, /*proactive=*/0);
  const auto idx = rig.send_round(1);
  UserTransport u = rig.user(5);
  const std::uint16_t me = rig.msg.old_ids[5];
  // Drop the own packet AND one more packet of the same block.
  std::size_t dropped = 0;
  std::uint16_t my_block = 0;
  for (const auto i : idx) {
    const auto h = packet::parse_enc_header(rig.pool[i]);
    ASSERT_TRUE(h.has_value());
    if (h->frm_id <= me && me <= h->to_id) {
      my_block = h->block_id;
      ++dropped;
      continue;
    }
    u.on_packet(i, 1);
  }
  ASSERT_EQ(dropped, 1u);
  const auto nack = u.end_of_round(1);
  ASSERT_EQ(nack.size(), 1u);
  EXPECT_EQ(nack[0].block_id, my_block);
  EXPECT_EQ(nack[0].parities_needed, 1);
}

TEST(UserTransport, ParityFillsTheGapNextRound) {
  Rig rig(512, 128, 5, 0);
  const auto idx = rig.send_round(1);
  UserTransport u = rig.user(7);
  const std::uint16_t me = rig.msg.old_ids[7];
  for (const auto i : idx) {
    const auto h = packet::parse_enc_header(rig.pool[i]);
    if (h && h->frm_id <= me && me <= h->to_id) continue;
    u.on_packet(i, 1);
  }
  const auto nack = u.end_of_round(1);
  ASSERT_FALSE(nack.empty());
  rig.server->accept_nack(7, nack);
  const auto idx2 = rig.send_round(2);
  ASSERT_FALSE(idx2.empty());
  for (const auto i : idx2) u.on_packet(i, 2);
  EXPECT_TRUE(u.end_of_round(2).empty());
  EXPECT_TRUE(u.recovered());
  EXPECT_EQ(u.recovery_round(), 2);
}

TEST(UserTransport, WakeUpNackWhenNothingReceived) {
  Rig rig;
  rig.send_round(1);
  UserTransport u = rig.user(0);
  const auto nack = u.end_of_round(1);
  ASSERT_EQ(nack.size(), 1u);
  EXPECT_EQ(nack[0].block_id, 0);
  EXPECT_EQ(nack[0].parities_needed, rig.cfg.block_size);
}

TEST(UserTransport, UsrPacketCompletes) {
  Rig rig;
  rig.send_round(1);
  UserTransport u = rig.user(9);
  const std::uint16_t new_id = static_cast<std::uint16_t>(
      tree::derive_new_user_id(rig.msg.old_ids[9], rig.msg.payload.max_kid,
                               rig.msg.payload.degree)
          .value());
  u.on_usr(rig.server->usr_for(new_id));
  EXPECT_TRUE(u.recovered());
  EXPECT_EQ(u.current_id(), new_id);
  EXPECT_FALSE(u.entries().empty());
}

TEST(UserTransport, IdUpdatedFromFirstPacket) {
  // Force splits: more joins than leaves.
  WorkloadConfig wc;
  wc.group_size = 16;
  wc.joins = 5;
  wc.leaves = 0;
  const auto msg = generate_message(wc, 3, 1);
  ProtocolConfig cfg;
  cfg.block_size = 5;
  ServerTransport server(cfg, msg.payload, msg.assignment, 0, 1);
  PacketPool pool;
  for (Bytes& w : server.round_packets(1)) pool.push_back(std::move(w));

  // A split-relocated user exists in this workload (16 full + 5 joins).
  bool found_moved = false;
  for (std::size_t i = 0; i < msg.old_ids.size(); ++i) {
    const auto derived = tree::derive_new_user_id(
        msg.old_ids[i], msg.payload.max_kid, msg.payload.degree);
    ASSERT_TRUE(derived.has_value());
    if (*derived == msg.old_ids[i]) continue;
    found_moved = true;
    UserTransport u(msg.old_ids[i], cfg.block_size, msg.payload.degree,
                    &pool);
    for (std::size_t p = 0; p < pool.size(); ++p) u.on_packet(p, 1);
    EXPECT_EQ(u.current_id(), *derived);
    EXPECT_TRUE(u.recovered());
  }
  EXPECT_TRUE(found_moved);
}

TEST(UserTransport, DuplicateSlotsHelpDecoding) {
  // Small message with a partially-filled last block: duplicates make the
  // block decodable even when the real packet is lost.
  WorkloadConfig wc;
  wc.group_size = 16;
  wc.leaves = 4;
  const auto msg = generate_message(wc, 9, 1);
  ProtocolConfig cfg;
  cfg.block_size = 10;  // single block with duplicates
  ServerTransport server(cfg, msg.payload, msg.assignment, 0, 1);
  ASSERT_EQ(server.num_blocks(), 1u);
  PacketPool pool;
  for (Bytes& w : server.round_packets(1)) pool.push_back(std::move(w));
  ASSERT_EQ(pool.size(), 10u);

  UserTransport u(msg.old_ids[0], cfg.block_size, msg.payload.degree, &pool);
  // Drop slot 0 (the user's packet, assuming it is in the first slot);
  // duplicates of it appear later in the block and still deliver it.
  const auto h0 = packet::parse_enc_header(pool[0]);
  ASSERT_TRUE(h0.has_value());
  for (std::size_t i = 1; i < pool.size(); ++i) u.on_packet(i, 1);
  u.end_of_round(1);
  EXPECT_TRUE(u.recovered());
}

TEST(UserTransport, RedeliveredShardsAreIdempotent) {
  // Duplicated/reordered network delivery: the same wire arriving many
  // times must not inflate per-block shard counts (a block must not look
  // decodable before k *distinct* shards arrived), and the NACK must ask
  // for the same parities as a single clean delivery would.
  Rig rig(512, 128, 5, /*proactive=*/0);
  const auto idx = rig.send_round(1);
  UserTransport clean = rig.user(5);
  UserTransport noisy = rig.user(5);
  const std::uint16_t me = rig.msg.old_ids[5];
  for (const auto i : idx) {
    const auto h = packet::parse_enc_header(rig.pool[i]);
    ASSERT_TRUE(h.has_value());
    if (h->frm_id <= me && me <= h->to_id) continue;  // drop own packet
    clean.on_packet(i, 1);
    // The noisy path sees every packet three times.
    noisy.on_packet(i, 1);
    noisy.on_packet(i, 1);
    noisy.on_packet(i, 1);
  }
  const auto nack_clean = clean.end_of_round(1);
  const auto nack_noisy = noisy.end_of_round(1);
  EXPECT_EQ(clean.recovered(), noisy.recovered());
  ASSERT_EQ(nack_clean.size(), nack_noisy.size());
  for (std::size_t i = 0; i < nack_clean.size(); ++i) {
    EXPECT_EQ(nack_clean[i].block_id, nack_noisy[i].block_id);
    EXPECT_EQ(nack_clean[i].parities_needed, nack_noisy[i].parities_needed);
  }
}

TEST(UserTransport, CorruptedDatagramIsIgnoredNotFatal) {
  // A bit-corrupted wire that slips past the checksum reaches the parser;
  // a rejected parse must leave the receiver state untouched, even when
  // the damaged packet would have been the user's own.
  Rig rig(512, 128, 5, 0);
  const auto idx = rig.send_round(1);
  UserTransport u = rig.user(3);
  // Truncate a copy of the first packet mid-entry: strict-tail parsing
  // rejects it; on_packet must shrug it off.
  Bytes damaged = rig.pool[idx[0]];
  damaged.resize(packet::kEncHeaderSize + packet::kEntrySize / 2);
  const std::size_t didx = rig.pool.size();
  rig.pool.push_back(damaged);
  EXPECT_NO_THROW(u.on_packet(didx, 1));
  EXPECT_FALSE(u.recovered());
  // The clean copies still work.
  for (const auto i : idx) u.on_packet(i, 1);
  EXPECT_TRUE(u.recovered());
}

}  // namespace
}  // namespace rekey::transport
