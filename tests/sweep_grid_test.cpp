// Determinism contract of the parallel sweep engine: a grid must produce
// bit-identical RunMetrics no matter how many worker threads execute it,
// and point seeds must give every point its own RNG stream.
#include <gtest/gtest.h>

#include <set>

#include "sweep.h"

namespace rekey::bench {
namespace {

// A miniature F9-style grid: rho x alpha, small groups so the whole grid
// runs in well under a second.
std::vector<SweepConfig> small_grid() {
  std::vector<SweepConfig> points;
  for (const double rho : {1.0, 1.5}) {
    for (const double alpha : {0.0, 0.2, 1.0}) {
      SweepConfig cfg;
      cfg.group_size = 128;
      cfg.leaves = 32;
      cfg.alpha = alpha;
      cfg.protocol.adaptive_rho = false;
      cfg.protocol.initial_rho = rho;
      cfg.protocol.max_multicast_rounds = 2;
      cfg.messages = 2;
      cfg.seed = point_seed(0x5EED, points.size());
      points.push_back(cfg);
    }
  }
  return points;
}

TEST(SweepGrid, ParallelMatchesSerialBitForBit) {
  const auto points = small_grid();
  const auto serial = run_sweep_grid(points, 1);
  const auto parallel4 = run_sweep_grid(points, 4);
  const auto parallel8 = run_sweep_grid(points, 8);
  ASSERT_EQ(serial.size(), points.size());
  // RunMetrics::operator== compares every counter of every message, so
  // this is an exact equality over the full simulation output.
  EXPECT_EQ(serial, parallel4);
  EXPECT_EQ(serial, parallel8);
}

TEST(SweepGrid, ResultsAlignWithDirectRunSweep) {
  const auto points = small_grid();
  const auto runs = run_sweep_grid(points, 3);
  for (std::size_t i = 0; i < points.size(); ++i)
    EXPECT_EQ(runs[i], run_sweep(points[i])) << "point " << i;
}

TEST(SweepGrid, EmptyGrid) {
  EXPECT_TRUE(run_sweep_grid({}, 4).empty());
}

TEST(PointSeed, StreamsAreDistinctAndStable) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t base : {0xF08ull, 0xF09ull, 0xAB5ull})
    for (std::uint64_t i = 0; i < 64; ++i)
      EXPECT_TRUE(seeds.insert(point_seed(base, i)).second)
          << "collision at base " << base << " index " << i;
  // Deterministic across calls.
  EXPECT_EQ(point_seed(0xF09, 7), point_seed(0xF09, 7));
  EXPECT_NE(point_seed(0xF09, 7), point_seed(0xF09, 8));
}

}  // namespace
}  // namespace rekey::bench
