// UserKeyView unit tests: id tracking, key learning, stale-key handling,
// and robustness against messages that do not concern the user.
#include <gtest/gtest.h>

#include "common/ensure.h"
#include "keytree/user_view.h"

namespace rekey::tree {
namespace {

crypto::KeyGenerator gen(42);

std::pair<NodeId, crypto::SymmetricKey> cred(NodeId slot,
                                             const crypto::SymmetricKey& k) {
  return {slot, k};
}

TEST(UserKeyView, RequiresIndividualKey) {
  const auto k = gen.next();
  const std::pair<NodeId, crypto::SymmetricKey> wrong{7, k};
  EXPECT_THROW(UserKeyView(1, /*slot=*/9, 4, std::span(&wrong, 1)),
               EnsureError);
}

TEST(UserKeyView, HoldsInitialKeys) {
  const auto individual = gen.next();
  const auto aux = gen.next();
  const std::vector<std::pair<NodeId, crypto::SymmetricKey>> keys{
      cred(9, individual), cred(2, aux)};
  UserKeyView v(1, 9, 4, keys);
  EXPECT_EQ(v.num_keys(), 2u);
  EXPECT_EQ(v.key_at(9).value(), individual);
  EXPECT_EQ(v.key_at(2).value(), aux);
  EXPECT_FALSE(v.key_at(0).has_value());
  EXPECT_FALSE(v.group_key().has_value());
}

TEST(UserKeyView, UpdateSlotNoChange) {
  const auto individual = gen.next();
  const std::vector<std::pair<NodeId, crypto::SymmetricKey>> keys{
      cred(9, individual)};
  UserKeyView v(1, 9, 4, keys);
  v.update_slot(/*max_kid=*/4);  // 9 in (4, 20]: unchanged
  EXPECT_EQ(v.id(), 9u);
  EXPECT_EQ(v.key_at(9).value(), individual);
}

TEST(UserKeyView, UpdateSlotMovesIndividualKey) {
  const auto individual = gen.next();
  const std::vector<std::pair<NodeId, crypto::SymmetricKey>> keys{
      cred(5, individual)};
  UserKeyView v(1, 5, 4, keys);
  v.update_slot(/*max_kid=*/5);  // node 5 split: user now at 21
  EXPECT_EQ(v.id(), 21u);
  EXPECT_FALSE(v.key_at(5).has_value());
  EXPECT_EQ(v.key_at(21).value(), individual);
}

TEST(UserKeyView, ApplyLearnsChainBottomUp) {
  // Path 21 -> 5 -> 1 -> 0 (d=4). View holds only the individual key;
  // encryptions deliver new keys for 5, 1, 0 encrypted along the chain.
  const auto individual = gen.next();
  const auto k5 = gen.next();
  const auto k1 = gen.next();
  const auto k0 = gen.next();
  std::vector<Encryption> encs;
  auto push = [&](NodeId enc_id, NodeId target,
                  const crypto::SymmetricKey& kek,
                  const crypto::SymmetricKey& plain) {
    Encryption e;
    e.enc_id = enc_id;
    e.target_id = target;
    e.payload = crypto::encrypt_key(kek, plain, /*msg=*/3, enc_id);
    encs.push_back(e);
  };
  push(21, 5, individual, k5);
  push(5, 1, k5, k1);
  push(1, 0, k1, k0);

  const std::vector<std::pair<NodeId, crypto::SymmetricKey>> keys{
      cred(21, individual)};
  UserKeyView v(1, 21, 4, keys);
  EXPECT_EQ(v.apply(3, /*max_kid=*/5, encs), 3u);
  EXPECT_EQ(v.key_at(5).value(), k5);
  EXPECT_EQ(v.key_at(1).value(), k1);
  EXPECT_EQ(v.group_key().value(), k0);
}

TEST(UserKeyView, IrrelevantEncryptionsIgnored) {
  const auto individual = gen.next();
  const auto other = gen.next();
  std::vector<Encryption> encs;
  Encryption e;
  e.enc_id = 7;  // not on the path of user 21
  e.target_id = 1;
  e.payload = crypto::encrypt_key(other, gen.next(), 1, 7);
  encs.push_back(e);
  const std::vector<std::pair<NodeId, crypto::SymmetricKey>> keys{
      cred(21, individual)};
  UserKeyView v(1, 21, 4, keys);
  EXPECT_EQ(v.apply(1, 5, encs), 0u);
  EXPECT_EQ(v.num_keys(), 1u);
}

TEST(UserKeyView, StaleKeyDecryptionRejectedByTag) {
  // An encryption produced under a *different* key than the view holds
  // must be skipped (tag mismatch), not mis-decrypted.
  const auto individual = gen.next();
  const auto real_key = gen.next();
  std::vector<Encryption> encs;
  Encryption e;
  e.enc_id = 21;
  e.target_id = 5;
  e.payload = crypto::encrypt_key(real_key, gen.next(), 1, 21);
  encs.push_back(e);
  const std::vector<std::pair<NodeId, crypto::SymmetricKey>> keys{
      cred(21, individual)};  // holds a different key for node 21
  UserKeyView v(1, 21, 4, keys);
  EXPECT_EQ(v.apply(1, 5, encs), 0u);
  EXPECT_FALSE(v.key_at(5).has_value());
}

TEST(UserKeyView, WrongMessageIdRejected) {
  const auto individual = gen.next();
  const auto k5 = gen.next();
  std::vector<Encryption> encs;
  Encryption e;
  e.enc_id = 21;
  e.target_id = 5;
  e.payload = crypto::encrypt_key(individual, k5, /*msg=*/1, 21);
  encs.push_back(e);
  const std::vector<std::pair<NodeId, crypto::SymmetricKey>> keys{
      cred(21, individual)};
  UserKeyView v(1, 21, 4, keys);
  // Replay under a different message id: nonce/tag mismatch.
  EXPECT_EQ(v.apply(/*msg_id=*/2, 5, encs), 0u);
}

TEST(UserKeyView, ReapplyingIsIdempotent) {
  const auto individual = gen.next();
  const auto k5 = gen.next();
  std::vector<Encryption> encs;
  Encryption e;
  e.enc_id = 21;
  e.target_id = 5;
  e.payload = crypto::encrypt_key(individual, k5, 1, 21);
  encs.push_back(e);
  const std::vector<std::pair<NodeId, crypto::SymmetricKey>> keys{
      cred(21, individual)};
  UserKeyView v(1, 21, 4, keys);
  EXPECT_EQ(v.apply(1, 5, encs), 1u);
  EXPECT_EQ(v.apply(1, 5, encs), 1u);  // learned again, same value
  EXPECT_EQ(v.key_at(5).value(), k5);
}

}  // namespace
}  // namespace rekey::tree
