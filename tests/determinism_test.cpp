// Reproducibility tests: every stochastic component of the system —
// workloads, topologies, full transport sessions — must be bit-exact
// functions of their seeds, or the benches' "same seed, ablated knob"
// comparisons would be meaningless.
#include <gtest/gtest.h>

#include "transport/eager.h"
#include "transport/session.h"
#include "transport/workload.h"

namespace rekey::transport {
namespace {

simnet::TopologyConfig topo_config() {
  simnet::TopologyConfig t;
  t.num_users = 256;
  t.alpha = 0.2;
  t.p_high = 0.2;
  t.p_low = 0.02;
  t.p_source = 0.01;
  return t;
}

MessageMetrics run_session(std::uint64_t topo_seed, std::uint64_t wl_seed) {
  WorkloadConfig wc;
  wc.group_size = 256;
  wc.leaves = 64;
  auto msg = generate_message(wc, wl_seed, 1);
  simnet::Topology topo(topo_config(), topo_seed);
  ProtocolConfig cfg;
  RhoController rho(cfg, 1);
  RekeySession session(topo, cfg, rho);
  return session.run_message(msg.payload, std::move(msg.assignment),
                             msg.old_ids);
}

TEST(Determinism, SessionsAreSeedExact) {
  const auto a = run_session(11, 22);
  const auto b = run_session(11, 22);
  EXPECT_EQ(a.multicast_sent, b.multicast_sent);
  EXPECT_EQ(a.round1_nacks, b.round1_nacks);
  EXPECT_EQ(a.multicast_rounds, b.multicast_rounds);
  EXPECT_EQ(a.recovered_in_round, b.recovered_in_round);
  EXPECT_EQ(a.total_nacks, b.total_nacks);
  EXPECT_DOUBLE_EQ(a.duration_ms, b.duration_ms);
}

TEST(Determinism, TopologySeedMatters) {
  const auto a = run_session(11, 22);
  const auto b = run_session(12, 22);
  // Same workload, different network: the loss realization must differ.
  EXPECT_TRUE(a.round1_nacks != b.round1_nacks ||
              a.multicast_sent != b.multicast_sent ||
              a.recovered_in_round != b.recovered_in_round);
}

TEST(Determinism, WorkloadSeedMatters) {
  const auto a = run_session(11, 22);
  const auto b = run_session(11, 23);
  EXPECT_TRUE(a.enc_packets != b.enc_packets ||
              a.round1_nacks != b.round1_nacks ||
              a.recovered_in_round != b.recovered_in_round);
}

TEST(Determinism, EagerSessionsAreSeedExact) {
  auto run = [] {
    WorkloadConfig wc;
    wc.group_size = 256;
    wc.leaves = 64;
    auto msg = generate_message(wc, 5, 1);
    simnet::Topology topo(topo_config(), 7);
    ProtocolConfig cfg;
    EagerSession session(topo, cfg);
    return session.run_message(msg.payload, std::move(msg.assignment),
                               msg.old_ids);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.multicast_sent, b.multicast_sent);
  EXPECT_EQ(a.nacks_received, b.nacks_received);
  EXPECT_DOUBLE_EQ(a.mean_latency_ms, b.mean_latency_ms);
  EXPECT_DOUBLE_EQ(a.max_latency_ms, b.max_latency_ms);
}

TEST(Determinism, WorkloadsAreSeedExactInContent) {
  WorkloadConfig wc;
  wc.group_size = 128;
  wc.joins = 16;
  wc.leaves = 32;
  const auto a = generate_message(wc, 9, 3);
  const auto b = generate_message(wc, 9, 3);
  ASSERT_EQ(a.assignment.packets.size(), b.assignment.packets.size());
  for (std::size_t i = 0; i < a.assignment.packets.size(); ++i) {
    EXPECT_EQ(a.assignment.packets[i].serialize(),
              b.assignment.packets[i].serialize());
  }
}

}  // namespace
}  // namespace rekey::transport
