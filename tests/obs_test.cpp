// Metrics registry (counters/gauges/histograms with percentile export)
// and the env-gated structured event trace.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "common/obs.h"

namespace rekey::obs {
namespace {

std::string temp_path(const char* name) {
  return testing::TempDir() + name;
}

TEST(Metrics, CounterAndGauge) {
  MetricsRegistry reg;
  Counter& c = reg.counter("packets");
  c.add();
  c.add(9);
  EXPECT_EQ(c.value(), 10u);
  // Same name returns the same instrument.
  reg.counter("packets").add(5);
  EXPECT_EQ(c.value(), 15u);

  Gauge& g = reg.gauge("rho");
  g.set(1.5);
  EXPECT_DOUBLE_EQ(reg.gauge("rho").value(), 1.5);
}

TEST(Metrics, CounterIsThreadSafe) {
  Counter c;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([&c] {
      for (int i = 0; i < 10000; ++i) c.add();
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), 40000u);
}

TEST(Metrics, HistogramBasicStats) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);

  for (double v : {4.0, 8.0, 12.0}) h.observe(v);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 24.0);
  EXPECT_DOUBLE_EQ(h.min(), 4.0);
  EXPECT_DOUBLE_EQ(h.max(), 12.0);
  EXPECT_DOUBLE_EQ(h.mean(), 8.0);
}

TEST(Metrics, HistogramPercentiles) {
  Histogram single;
  single.observe(7.0);
  EXPECT_DOUBLE_EQ(single.percentile(0.0), 7.0);
  EXPECT_DOUBLE_EQ(single.percentile(0.5), 7.0);
  EXPECT_DOUBLE_EQ(single.percentile(1.0), 7.0);

  // Log-linear buckets give ~3% relative resolution: a uniform ramp's
  // quantiles come back within a few percent.
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.observe(static_cast<double>(i));
  EXPECT_NEAR(h.percentile(0.5), 500.0, 500.0 * 0.05);
  EXPECT_NEAR(h.percentile(0.9), 900.0, 900.0 * 0.05);
  EXPECT_NEAR(h.percentile(0.99), 990.0, 990.0 * 0.05);
  // Percentiles are clamped to the observed range.
  EXPECT_GE(h.percentile(0.0), 1.0);
  EXPECT_LE(h.percentile(1.0), 1000.0);
}

TEST(Metrics, HistogramToJson) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i));
  Json j = h.to_json();
  ASSERT_TRUE(j.is_object());
  EXPECT_EQ(j.at("count").as_int(), 100);
  EXPECT_DOUBLE_EQ(j.at("sum").as_double(), 5050.0);
  EXPECT_DOUBLE_EQ(j.at("min").as_double(), 1.0);
  EXPECT_DOUBLE_EQ(j.at("max").as_double(), 100.0);
  EXPECT_TRUE(j.contains("p50"));
  EXPECT_TRUE(j.contains("p90"));
  EXPECT_TRUE(j.contains("p99"));
}

TEST(Metrics, RegistrySnapshotAndReset) {
  MetricsRegistry reg;
  reg.counter("b_count").add(2);
  reg.counter("a_count").add(1);
  reg.gauge("rho").set(1.6);
  reg.histogram("latency").observe(3.0);

  Json snap = reg.to_json();
  const auto& counters = snap.at("counters").as_object();
  ASSERT_EQ(counters.size(), 2u);
  // Lexicographic order in the snapshot regardless of creation order.
  EXPECT_EQ(counters[0].first, "a_count");
  EXPECT_EQ(counters[1].first, "b_count");
  EXPECT_EQ(counters[1].second.as_int(), 2);
  EXPECT_DOUBLE_EQ(snap.at("gauges").at("rho").as_double(), 1.6);
  EXPECT_EQ(snap.at("histograms").at("latency").at("count").as_int(), 1);

  reg.reset();
  Json empty = reg.to_json();
  EXPECT_EQ(empty.at("counters").size(), 0u);
  EXPECT_EQ(empty.at("gauges").size(), 0u);
  EXPECT_EQ(empty.at("histograms").size(), 0u);
}

TEST(Metrics, GlobalRegistryIsASingleton) {
  EXPECT_EQ(&MetricsRegistry::global(), &MetricsRegistry::global());
}

TEST(Trace, DisabledByDefaultAndEmitIsNoOp) {
  Trace::close();
  EXPECT_FALSE(trace_enabled());
  // Emitting with no sink must be harmless.
  Trace::emit("noop", {{"x", 1}});
  EXPECT_FALSE(trace_enabled());
}

TEST(Trace, EmitsParseableJsonLinesWithSequenceNumbers) {
  const std::string path = temp_path("rekey_trace_test.jsonl");
  Trace::open(path);
  EXPECT_TRUE(trace_enabled());
  Trace::emit("round", {{"round", 1}, {"nacks", 37}, {"rho", 1.5}});
  Trace::emit("unicast_wave", {{"wave", 2}, {"users", 5}});
  Trace::close();
  EXPECT_FALSE(trace_enabled());

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::vector<Json> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto parsed = Json::parse(line);
    ASSERT_TRUE(parsed.has_value()) << line;
    lines.push_back(std::move(*parsed));
  }
  ASSERT_EQ(lines.size(), 2u);

  EXPECT_EQ(lines[0].at("ev").as_string(), "round");
  EXPECT_EQ(lines[0].at("round").as_int(), 1);
  EXPECT_EQ(lines[0].at("nacks").as_int(), 37);
  EXPECT_DOUBLE_EQ(lines[0].at("rho").as_double(), 1.5);
  EXPECT_EQ(lines[1].at("ev").as_string(), "unicast_wave");
  EXPECT_EQ(lines[1].at("users").as_int(), 5);

  // The process-wide sequence keeps interleaved emissions ordered.
  ASSERT_TRUE(lines[0].contains("seq"));
  ASSERT_TRUE(lines[1].contains("seq"));
  EXPECT_EQ(lines[1].at("seq").as_int(), lines[0].at("seq").as_int() + 1);

  std::remove(path.c_str());
}

TEST(Trace, ReopenOverridesPreviousSink) {
  const std::string a = temp_path("rekey_trace_a.jsonl");
  const std::string b = temp_path("rekey_trace_b.jsonl");
  Trace::open(a);
  Trace::emit("first", {});
  Trace::open(b);
  Trace::emit("second", {});
  Trace::close();

  std::ifstream ia(a), ib(b);
  std::string la, lb;
  ASSERT_TRUE(std::getline(ia, la));
  ASSERT_TRUE(std::getline(ib, lb));
  EXPECT_NE(la.find("\"first\""), std::string::npos);
  EXPECT_NE(lb.find("\"second\""), std::string::npos);
  std::remove(a.c_str());
  std::remove(b.c_str());
}

}  // namespace
}  // namespace rekey::obs
