// Quickstart: the smallest useful tour of the public API.
//
// Creates a secure group, exercises joins and leaves across rekey
// intervals with ideal (in-process) delivery, and shows the security
// guarantees: every current member tracks the group key; departed members
// are locked out; new members cannot read the past.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/service.h"

using namespace rekey;

int main() {
  // A group key service with a degree-4 key tree.
  core::ServiceConfig config;
  config.degree = 4;
  core::GroupKeyService service(config);

  // Bootstrap a 16-member group. Each member gets its individual key and
  // path keys over the (assumed authenticated) registration channel.
  auto members = service.bootstrap_members(16);
  std::printf("group of %zu members, key tree height %u\n",
              service.group_size(), service.tree().height());
  std::printf("everyone holds the group key: %s\n",
              *service.member(members[0]).group_key() == service.group_key()
                  ? "yes"
                  : "NO");

  // Interval 1: one member leaves, two join. The batch is processed by
  // the marking algorithm; one rekey message re-keys the whole group.
  const auto departing = members[3];
  service.request_leave(departing);
  const auto alice = service.register_member();
  const auto bob = service.register_member();
  service.request_join(alice);
  service.request_join(bob);

  const auto report = service.rekey_interval();
  std::printf(
      "\ninterval %u: J=%zu L=%zu -> %zu encryptions in %zu ENC packets "
      "(duplication %.1f%%)\n",
      report.msg_id, report.joins, report.leaves, report.encryptions,
      report.enc_packets, 100.0 * report.duplication_overhead);

  std::printf("alice has the new group key: %s\n",
              service.member(alice).group_key().has_value() &&
                      *service.member(alice).group_key() ==
                          service.group_key()
                  ? "yes"
                  : "NO");
  std::printf("departed member still known to the service: %s\n",
              service.has_member(departing) ? "YES (bug!)" : "no");

  // Interval 2: churn again; all surviving members keep tracking the key.
  service.request_leave(members[0]);
  service.rekey_interval();
  std::printf("\nafter interval 2, group size %zu; bob's key fresh: %s\n",
              service.group_size(),
              *service.member(bob).group_key() == service.group_key()
                  ? "yes"
                  : "NO");

  std::printf("\nquickstart OK\n");
  return 0;
}
