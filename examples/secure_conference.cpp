// Restricted teleconference: a small, latency-sensitive group.
//
// 64 participants with a binary key tree, short rekey intervals and a
// 1-round deadline: the server switches to unicast after a single
// multicast round (paper §7 recommends this for small intervals), trading
// a little server bandwidth for worst-case latency. Participants on awful
// hotel wifi (40% loss) still get their keys via duplicated USR packets.
//
// Build & run:  ./build/examples/secure_conference
#include <cstdio>

#include "core/service.h"

using namespace rekey;

int main() {
  core::ServiceConfig config;
  config.degree = 2;  // binary tree: more hops, fewer keys per message
  config.protocol.block_size = 5;
  config.protocol.max_multicast_rounds = 1;  // unicast right after round 1
  config.protocol.deadline_rounds = 1;
  config.protocol.num_nack_target = 5;
  config.protocol.send_interval_ms = 20.0;  // 50 pkt/s: small group, go fast
  core::GroupKeyService service(config);

  auto members = service.bootstrap_members(64);

  simnet::TopologyConfig net;
  net.num_users = 96;  // headroom: the roster grows past 64 mid-demo
  net.alpha = 0.10;   // a few participants on terrible links
  net.p_high = 0.40;
  net.p_low = 0.02;
  net.p_source = 0.005;
  simnet::Topology topology(net, 99);

  std::printf("secure conference: %zu participants, degree-2 tree, "
              "unicast after 1 multicast round\n\n",
              service.group_size());
  std::printf("%4s %28s %8s %9s %9s %10s\n", "ivl", "event", "packets",
              "round1 ok", "unicast", "interval ms");

  const char* events[] = {"two participants drop off", "one rejoins",
                          "moderator evicts a member", "three newcomers",
                          "quiet interval (one leave)"};
  for (int interval = 0; interval < 5; ++interval) {
    switch (interval) {
      case 0:
        service.request_leave(members[10]);
        service.request_leave(members[11]);
        break;
      case 1: {
        const auto m = service.register_member();
        service.request_join(m);
        members.push_back(m);
        break;
      }
      case 2:
        service.request_leave(members[20]);
        break;
      case 3:
        for (int i = 0; i < 3; ++i) {
          const auto m = service.register_member();
          service.request_join(m);
          members.push_back(m);
        }
        break;
      default:
        service.request_leave(members[30]);
        break;
    }

    const auto report = service.rekey_interval_over(topology);
    const auto& t = *report.transport;
    const std::size_t r1 =
        t.recovered_in_round.count(1) ? t.recovered_in_round.at(1) : 0;
    std::printf("%4u %28s %8zu %6zu/%-2zu %9zu %10.0f\n", report.msg_id,
                events[interval], t.multicast_sent, r1, t.users,
                t.unicast_users, t.duration_ms);
  }

  std::printf("\nfinal group size: %zu; all views consistent: ",
              service.group_size());
  bool ok = true;
  for (const auto& m : {members[0], members[1], members.back()})
    if (service.has_member(m))
      ok = ok && *service.member(m).group_key() == service.group_key();
  std::printf("%s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
