// Pay-per-view broadcast: the paper's motivating workload at scale.
//
// A 4096-subscriber group with heavy churn (hundreds of subscriptions
// expire per interval, new ones arrive) rekeyed over the simulated
// Internet topology: 20% of receivers sit behind 20%-loss links, the rest
// at 2%, with a 1%-loss source link and bursty (two-state Markov) losses.
// The full multicast + proactive-FEC + unicast protocol delivers every
// interval's keys; the report shows the transport doing its job.
//
// Build & run:  ./build/examples/pay_per_view
#include <cstdio>

#include "common/rng.h"
#include "core/service.h"

using namespace rekey;

int main() {
  core::ServiceConfig config;
  config.degree = 4;
  config.protocol.block_size = 10;
  config.protocol.num_nack_target = 20;
  config.protocol.max_multicast_rounds = 2;  // then unicast stragglers
  config.protocol.deadline_rounds = 2;
  core::GroupKeyService service(config);

  constexpr std::size_t kSubscribers = 4096;
  auto members = service.bootstrap_members(kSubscribers);

  simnet::TopologyConfig net;
  net.num_users = kSubscribers + 2048;  // headroom: churn lets the roster grow
  net.alpha = 0.20;
  net.p_high = 0.20;
  net.p_low = 0.02;
  net.p_source = 0.01;
  simnet::Topology topology(net, /*seed=*/2026);

  std::printf("pay-per-view: %zu subscribers, tree height %u\n\n",
              service.group_size(), service.tree().height());
  std::printf(
      "%4s %6s %6s %8s %8s %7s %7s %9s %8s %9s\n", "ivl", "leave", "join",
      "encs", "packets", "rho", "rounds", "NACKs(r1)", "unicast", "missed");

  Rng rng(7);
  for (int interval = 0; interval < 8; ++interval) {
    // Churn: ~5% of subscribers cancel, a similar number sign up.
    rng.shuffle(members);
    const std::size_t cancels = 150 + rng.next_in(0, 100);
    for (std::size_t i = 0; i < cancels; ++i)
      service.request_leave(members[members.size() - 1 - i]);
    members.resize(members.size() - cancels);
    const std::size_t signups = 150 + rng.next_in(0, 100);
    for (std::size_t i = 0; i < signups; ++i) {
      const auto m = service.register_member();
      service.request_join(m);
      members.push_back(m);
    }

    const auto report = service.rekey_interval_over(topology);
    const auto& t = *report.transport;
    std::printf("%4u %6zu %6zu %8zu %8zu %7.2f %7d %9zu %8zu %9zu\n",
                report.msg_id, report.leaves, report.joins,
                report.encryptions, t.multicast_sent, t.rho_used,
                t.multicast_rounds, t.round1_nacks, t.unicast_users,
                t.deadline_misses);

    // The whole point: every subscriber ends the interval with the key.
    std::size_t synced = 0;
    for (const auto m : members)
      synced += *service.member(m).group_key() == service.group_key();
    if (synced != members.size()) {
      std::printf("!! %zu/%zu subscribers out of sync\n", synced,
                  members.size());
      return 1;
    }
  }
  std::printf("\nall %zu subscribers tracked the group key through every "
              "interval\n",
              members.size());
  return 0;
}
