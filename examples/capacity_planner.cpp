// Capacity planner: "can one key server handle my group?"
//
// Uses the analysis module (the SIGCOMM paper's models) to size a
// deployment without running a simulation: expected rekey-message size,
// expected round-1 NACKs for the planned FEC proactivity, and the smallest
// sustainable rekey interval for the server's bandwidth budget.
//
// Build & run:  ./build/examples/capacity_planner [group_size]
#include <cstdio>
#include <cstdlib>

#include "analysis/batch_cost.h"
#include "analysis/scalability.h"
#include "analysis/transport_model.h"

using namespace rekey::analysis;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                 : 65536;
  const unsigned d = 4;
  const std::size_t k = 10;
  const double rho = 1.4;
  const std::size_t churn = n / 20;  // 5% leave per interval

  std::printf("capacity plan for a %zu-user group (d=%u, k=%zu, rho=%.1f, "
              "%zu leaves/interval)\n\n",
              n, d, k, rho, churn);

  const double encs = expected_encryptions(n, 0, churn, d);
  const double pkts = expected_enc_packets(n, 0, churn, d, 46);
  std::printf("rekey message:   %.0f encryptions, ~%.0f ENC packets "
              "(~%.2f MB with FEC)\n",
              encs, pkts, pkts * (1 + (rho - 1)) * 1027 / 1e6);

  const double nacks = expected_round1_nacks(
      n, 0.2, 0.2, 0.02, 0.01, k, static_cast<std::size_t>((rho - 1) * k));
  std::printf("expected NACKs after round 1 (alpha=20%% at 20%% loss): "
              "%.1f\n",
              nacks);
  const double rounds = expected_user_rounds(
      k, static_cast<std::size_t>((rho - 1) * k), combined_loss(0.01, 0.02));
  std::printf("expected rounds for a low-loss user: %.3f\n\n", rounds);

  ServerCostParams params;  // library defaults; calibrate with bench_a3
  for (const double mbps : {1.0, 10.0, 100.0}) {
    params.bandwidth_bps = mbps * 1e6;
    // At higher budgets the 10 pkt/s pacing would dominate; scale it too.
    params.send_interval_ms = 100.0 / mbps;
    const auto p =
        evaluate_scalability(n, 0, churn, d, k, rho, 1027, 46, params);
    std::printf("at %6.0f Mbps budget: min rekey interval %7.2f s "
                "(%.0f rekeys/hour), cpu %.1f ms/msg\n",
                mbps, p.min_interval_s, p.max_rekeys_per_hour, p.cpu_ms);
  }

  std::printf("\nrule of thumb (paper): the rekey interval must grow "
              "linearly with N; FEC encoding and key encryption are cheap "
              "next to sending the message.\n");
  return 0;
}
