// A4 — micro-benchmarks (google-benchmark): the unit costs underlying the
// paper's design choices. RSE parity encoding cost per block size k is the
// basis of Fig 8 (right): per-parity time is Theta(k * packet bytes), and
// the GF(256) region-kernel sweep (MB/s per ISA path and buffer size)
// shows how far the SIMD layer lifts that constant over scalar.
#include <benchmark/benchmark.h>

#include <iostream>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "sweep.h"
#include "crypto/chacha20.h"
#include "crypto/keys.h"
#include "crypto/sha256.h"
#include "fec/gf256_simd.h"
#include "fec/rse.h"
#include "keytree/marking.h"
#include "keytree/rekey_subtree.h"
#include "packet/assign.h"

namespace {

using namespace rekey;

std::vector<Bytes> random_block(int k, std::size_t len) {
  Rng rng(static_cast<std::uint64_t>(k));
  std::vector<Bytes> data(static_cast<std::size_t>(k));
  for (auto& pkt : data) {
    pkt.resize(len);
    for (auto& b : pkt) b = static_cast<std::uint8_t>(rng.next_in(0, 255));
  }
  return data;
}

void BM_RseEncodeOneParity(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const fec::RseCoder coder(k);
  const auto data = random_block(k, 1023);
  int idx = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(coder.encode_one(data, idx));
    idx = (idx + 1) % coder.max_parity();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * k *
                          1023);
}
BENCHMARK(BM_RseEncodeOneParity)->Arg(1)->Arg(5)->Arg(10)->Arg(20)->Arg(50);

void BM_RseDecodeWorstCase(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const fec::RseCoder coder(k);
  const auto data = random_block(k, 1023);
  // All-parity decode: the most expensive case (full matrix inversion).
  std::vector<fec::Shard> shards;
  for (int p = 0; p < k; ++p)
    shards.push_back({k + p, coder.encode_one(data, p)});
  for (auto _ : state) {
    benchmark::DoNotOptimize(coder.decode(shards));
  }
}
BENCHMARK(BM_RseDecodeWorstCase)->Arg(5)->Arg(10)->Arg(20);

void BM_KeyEncryption(benchmark::State& state) {
  crypto::KeyGenerator gen(1);
  const auto kek = gen.next();
  const auto plain = gen.next();
  std::uint64_t id = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::encrypt_key(kek, plain, 1, id++));
  }
}
BENCHMARK(BM_KeyEncryption);

void BM_Sha256_1KiB(benchmark::State& state) {
  Bytes data(1024, 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::hash(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1024);
}
BENCHMARK(BM_Sha256_1KiB);

void BM_ChaCha20_1KiB(benchmark::State& state) {
  std::array<std::uint8_t, 32> key{};
  std::array<std::uint8_t, 12> nonce{};
  Bytes data(1024, 0xCD);
  for (auto _ : state) {
    crypto::ChaCha20 c(key, nonce);
    c.apply(data);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1024);
}
BENCHMARK(BM_ChaCha20_1KiB);

void BM_MarkingBatch(benchmark::State& state) {
  // One batch (J=0, L=N/4) on an N-user tree, including encryption
  // generation — the server's per-interval key-management cost.
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    state.PauseTiming();
    Rng rng(seed++);
    tree::KeyTree kt(4, rng.next_u64());
    kt.populate(n);
    std::vector<tree::MemberId> leaves;
    for (const auto pick : rng.sample_without_replacement(n, n / 4))
      leaves.push_back(static_cast<tree::MemberId>(pick));
    state.ResumeTiming();
    tree::Marker m(kt);
    const auto upd = m.run({}, leaves);
    benchmark::DoNotOptimize(tree::generate_rekey_payload(kt, upd, 1));
  }
}
BENCHMARK(BM_MarkingBatch)->Arg(1024)->Arg(4096);

void BM_MarkingOnly(benchmark::State& state) {
  // The marking algorithm alone (no encryption generation): the tree-walk
  // cost the flat arena is designed around. J=L=N/16 churn.
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    state.PauseTiming();
    Rng rng(seed++);
    tree::KeyTree kt(4, rng.next_u64());
    kt.populate(n);
    std::vector<tree::MemberId> leaves;
    for (const auto pick : rng.sample_without_replacement(n, n / 16))
      leaves.push_back(static_cast<tree::MemberId>(pick));
    std::vector<tree::MemberId> joins;
    for (std::size_t j = 0; j < n / 16; ++j)
      joins.push_back(static_cast<tree::MemberId>(n + j));
    state.ResumeTiming();
    tree::Marker m(kt);
    benchmark::DoNotOptimize(m.run(joins, leaves));
  }
}
BENCHMARK(BM_MarkingOnly)->Arg(1024)->Arg(4096)->Arg(32768);

void BM_PayloadGeneration(benchmark::State& state) {
  // Encryption generation over a fixed marked tree (marking done once in
  // setup — generation is const over the tree).
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  tree::KeyTree kt(4, rng.next_u64());
  kt.populate(n);
  std::vector<tree::MemberId> leaves;
  for (const auto pick : rng.sample_without_replacement(n, n / 4))
    leaves.push_back(static_cast<tree::MemberId>(pick));
  tree::Marker m(kt);
  const auto upd = m.run({}, leaves);
  tree::RekeyPayload payload;
  for (auto _ : state) {
    tree::generate_rekey_payload_into(kt, upd, 1, payload);
    benchmark::DoNotOptimize(payload.encryptions.data());
  }
}
BENCHMARK(BM_PayloadGeneration)->Arg(1024)->Arg(4096)->Arg(32768);

void BM_PayloadGenerationParallel(benchmark::State& state) {
  // Same, fanned out over the worker pool (REKEY_THREADS). The pool lives
  // outside the loop, as a long-running key server's would.
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  tree::KeyTree kt(4, rng.next_u64());
  kt.populate(n);
  std::vector<tree::MemberId> leaves;
  for (const auto pick : rng.sample_without_replacement(n, n / 4))
    leaves.push_back(static_cast<tree::MemberId>(pick));
  tree::Marker m(kt);
  const auto upd = m.run({}, leaves);
  ThreadPool pool(0);
  tree::RekeyPayload payload;
  for (auto _ : state) {
    tree::generate_rekey_payload_into(kt, upd, 1, payload, &pool);
    benchmark::DoNotOptimize(payload.encryptions.data());
  }
}
BENCHMARK(BM_PayloadGenerationParallel)->Arg(4096)->Arg(32768);

void BM_UkaAssignment(benchmark::State& state) {
  Rng rng(9);
  tree::KeyTree kt(4, rng.next_u64());
  kt.populate(4096);
  std::vector<tree::MemberId> leaves;
  for (const auto pick : rng.sample_without_replacement(4096, 1024))
    leaves.push_back(static_cast<tree::MemberId>(pick));
  tree::Marker m(kt);
  const auto upd = m.run({}, leaves);
  const auto payload = tree::generate_rekey_payload(kt, upd, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(packet::assign_keys(payload, 1027));
  }
}
BENCHMARK(BM_UkaAssignment);

Bytes random_bytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Bytes v(n);
  for (auto& b : v) b = static_cast<std::uint8_t>(rng.next_in(0, 255));
  return v;
}

// Kernel-throughput sweep: bytes/s of the two region kernels for every
// SIMD path this host supports, across buffer sizes bracketing the
// protocol's packet sizes (1027-byte ENC packets; 1023-byte FEC regions).
void register_region_kernel_benches() {
  for (const fec::SimdPath path : fec::supported_simd_paths()) {
    const fec::RegionKernels& kernels = fec::region_kernels(path);
    for (const std::size_t len : {64ul, 256ul, 1023ul, 4096ul, 65536ul}) {
      const std::string suffix = std::string("/") +
                                 fec::simd_path_name(path) + "/" +
                                 std::to_string(len);
      benchmark::RegisterBenchmark(
          ("BM_AddmulRegion" + suffix).c_str(),
          [kernels, len](benchmark::State& state) {
            Bytes dst = random_bytes(len, 1);
            const Bytes src = random_bytes(len, 2);
            for (auto _ : state) {
              kernels.addmul(dst.data(), src.data(), len, 0x8E);
              benchmark::DoNotOptimize(dst.data());
              benchmark::ClobberMemory();
            }
            state.SetBytesProcessed(
                static_cast<std::int64_t>(state.iterations()) *
                static_cast<std::int64_t>(len));
          });
      benchmark::RegisterBenchmark(
          ("BM_MulRegion" + suffix).c_str(),
          [kernels, len](benchmark::State& state) {
            Bytes dst(len, 0);
            const Bytes src = random_bytes(len, 3);
            for (auto _ : state) {
              kernels.mul(dst.data(), src.data(), len, 0x8E);
              benchmark::DoNotOptimize(dst.data());
              benchmark::ClobberMemory();
            }
            state.SetBytesProcessed(
                static_cast<std::int64_t>(state.iterations()) *
                static_cast<std::int64_t>(len));
          });
    }
  }
}

// Console reporter that also captures each run's per-iteration timings so
// they can be emitted through the shared FigureJson schema.
class CaptureReporter : public benchmark::ConsoleReporter {
 public:
  struct Row {
    std::string name;
    double real_ns = 0;
    double cpu_ns = 0;
    std::int64_t iterations = 0;
    double bytes_per_second = 0;
  };

  void ReportRuns(const std::vector<Run>& report) override {
    for (const Run& r : report) {
      if (r.error_occurred || r.run_type != Run::RT_Iteration) continue;
      Row row;
      row.name = r.benchmark_name();
      row.real_ns = r.GetAdjustedRealTime();
      row.cpu_ns = r.GetAdjustedCPUTime();
      row.iterations = static_cast<std::int64_t>(r.iterations);
      const auto bps = r.counters.find("bytes_per_second");
      if (bps != r.counters.end()) row.bytes_per_second = bps->second.value;
      rows.push_back(std::move(row));
    }
    ConsoleReporter::ReportRuns(report);
  }

  std::vector<Row> rows;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace rekey::bench;
  // Strip --smoke/--json first; everything else flows to google-benchmark.
  const BenchCli cli = parse_bench_cli(argc, argv, /*allow_extra=*/true);
  FigureJson json("A4", cli);

  register_region_kernel_benches();

  // Smoke mode shortens every benchmark's measuring window (schema test /
  // CI gate only need the document shape, not stable timings).
  std::vector<char*> args(argv, argv + argc);
  std::string min_time = "--benchmark_min_time=0.01";
  if (cli.smoke) args.insert(args.begin() + 1, min_time.data());
  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data()))
    return 1;

  CaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  json.header(std::cout, "A4",
              "micro-benchmarks: unit costs behind the design choices",
              "google-benchmark; per-iteration times, host-dependent");
  Table t({"benchmark", "real ns/iter", "cpu ns/iter", "iterations",
           "bytes/s"});
  t.set_precision(1);
  for (const auto& row : reporter.rows) {
    t.add_row({row.name, row.real_ns, row.cpu_ns,
               static_cast<long long>(row.iterations),
               row.bytes_per_second});
  }
  json.table(std::cout, t);
  json.note(std::cout,
            "Timings are host-dependent; bench_diff.py treats them as "
            "floats with a wide tolerance or skips A4 entirely.");
  return json.write();
}
