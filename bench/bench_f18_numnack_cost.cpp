// F18 — the cost of the NACK target (protocol paper Fig 18): average
// #rounds needed by a user (left; grows slowly and linearly in numNACK)
// and average server bandwidth overhead (right; elevated at numNACK=0,
// flat for numNACK >= 5).
#include <iostream>

#include "common/table.h"
#include "sweep.h"

using namespace rekey;
using namespace rekey::bench;

int main(int argc, char** argv) {
  const BenchCli cli = parse_bench_cli(argc, argv);
  FigureJson json("F18", cli);

  const std::vector<int> targets =
      cli.smoke ? std::vector<int>{0, 20, 100}
                : std::vector<int>{0, 5, 10, 20, 40, 60, 80, 100};
  const int kMessages = cli.smoke ? 2 : 8;
  constexpr std::uint64_t kBaseSeed = 0xF18;

  std::vector<SweepConfig> points;
  for (const int target : targets) {
    for (const double alpha : kAlphas) {
      SweepConfig cfg;
      if (cli.smoke) {
        cfg.group_size = 256;
        cfg.leaves = 64;
      }
      cfg.alpha = alpha;
      cfg.protocol.num_nack_target = target;
      cfg.protocol.max_nack = std::max(target, 100);
      cfg.protocol.max_multicast_rounds = 0;
      cfg.messages = kMessages;
      cfg.seed = point_seed(kBaseSeed, points.size());
      points.push_back(cfg);
    }
  }
  const auto runs = run_sweep_grid(points);
  json.add_seeds(points);

  Table rounds({"numNACK", "alpha=0", "alpha=20%", "alpha=40%",
                "alpha=100%"});
  rounds.set_precision(4);
  Table overhead({"numNACK", "alpha=0", "alpha=20%", "alpha=40%",
                  "alpha=100%"});
  overhead.set_precision(3);

  std::size_t point = 0;
  for (const int target : targets) {
    std::vector<Table::Cell> rrow{static_cast<long long>(target)};
    std::vector<Table::Cell> orow{static_cast<long long>(target)};
    for (std::size_t a = 0; a < std::size(kAlphas); ++a) {
      const auto& run = runs[point++];
      rrow.push_back(run.mean_user_rounds());
      orow.push_back(run.mean_bandwidth_overhead());
    }
    rounds.add_row(rrow);
    overhead.add_row(orow);
  }

  json.header(std::cout, "F18 (left)",
              "average #rounds needed by a user vs numNACK",
              "N=4096, L=N/4, k=10, adaptive rho, 8 messages/point");
  json.table(std::cout, rounds);

  json.header(std::cout, "F18 (right)",
              "average server bandwidth overhead vs numNACK",
              "same runs");
  json.table(std::cout, overhead);

  json.note(std::cout,
            "Shape check: per-user rounds grow slowly with numNACK; "
            "overhead spikes at numNACK=0 and flattens by 5.");
  return json.write();
}
