#include "sweep.h"

#include <sstream>

#include "common/parallel.h"
#include "common/rng.h"

namespace rekey::bench {

transport::RunMetrics run_sweep(const SweepConfig& config) {
  simnet::TopologyConfig tc;
  tc.num_users = config.group_size;
  tc.alpha = config.alpha;
  tc.p_high = config.p_high;
  tc.p_low = config.p_low;
  tc.p_source = config.p_source;
  tc.burst_loss = config.burst_loss;
  simnet::Topology topology(tc, config.seed ^ 0x70504F);

  transport::RhoController rho(config.protocol, config.seed ^ 0x52484F);
  transport::RekeySession session(topology, config.protocol, rho);

  transport::WorkloadConfig wc;
  wc.group_size = config.group_size;
  wc.joins = config.joins;
  wc.leaves = config.leaves;
  wc.degree = config.degree;
  wc.packet_size = config.protocol.packet_size;

  transport::RunMetrics run;
  for (int i = 0; i < config.messages; ++i) {
    auto msg = transport::generate_message(
        wc, config.seed + static_cast<std::uint64_t>(i) * 7919,
        static_cast<std::uint32_t>(i));
    run.messages.push_back(session.run_message(
        msg.payload, std::move(msg.assignment), msg.old_ids));
  }
  return run;
}

std::uint64_t point_seed(std::uint64_t base_seed, std::uint64_t point_index) {
  return mix_seed(base_seed, point_index);
}

std::vector<transport::RunMetrics> run_sweep_grid(
    const std::vector<SweepConfig>& points, unsigned threads) {
  std::vector<transport::RunMetrics> results(points.size());
  parallel_for_each_index(
      points.size(), [&](std::size_t i) { results[i] = run_sweep(points[i]); },
      threads);
  return results;
}

std::string alpha_label(double alpha) {
  std::ostringstream os;
  os << "alpha=" << alpha * 100 << "%";
  return os.str();
}

}  // namespace rekey::bench
