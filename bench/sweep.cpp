#include "sweep.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/ensure.h"
#include "common/parallel.h"
#include "common/rng.h"

namespace rekey::bench {

transport::RunMetrics run_sweep(const SweepConfig& config) {
  simnet::TopologyConfig tc;
  tc.num_users = config.group_size;
  tc.alpha = config.alpha;
  tc.p_high = config.p_high;
  tc.p_low = config.p_low;
  tc.p_source = config.p_source;
  tc.burst_loss = config.burst_loss;
  simnet::Topology topology(tc, config.seed ^ 0x70504F);
  if (config.faults.active())
    topology.install_faults(config.faults, config.seed ^ 0x464C54);

  transport::RhoController rho(config.protocol, config.seed ^ 0x52484F);
  transport::RekeySession session(topology, config.protocol, rho);

  transport::WorkloadConfig wc;
  wc.group_size = config.group_size;
  wc.joins = config.joins;
  wc.leaves = config.leaves;
  wc.degree = config.degree;
  wc.packet_size = config.protocol.packet_size;

  transport::RunMetrics run;
  for (int i = 0; i < config.messages; ++i) {
    auto msg = transport::generate_message(
        wc, config.seed + static_cast<std::uint64_t>(i) * 7919,
        static_cast<std::uint32_t>(i));
    run.messages.push_back(session.run_message(
        msg.payload, std::move(msg.assignment), msg.old_ids));
  }
  return run;
}

std::uint64_t point_seed(std::uint64_t base_seed, std::uint64_t point_index) {
  return mix_seed(base_seed, point_index);
}

std::vector<transport::RunMetrics> run_sweep_grid(
    const std::vector<SweepConfig>& points, unsigned threads) {
  std::vector<transport::RunMetrics> results(points.size());
  parallel_for_each_index(
      points.size(), [&](std::size_t i) { results[i] = run_sweep(points[i]); },
      threads);
  return results;
}

std::string alpha_label(double alpha) {
  std::ostringstream os;
  os << "alpha=" << alpha * 100 << "%";
  return os.str();
}

BenchCli parse_bench_cli(int& argc, char** argv, bool allow_extra) {
  BenchCli cli;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--smoke") {
      cli.smoke = true;
    } else if (arg == "--json") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: --json requires a file argument\n",
                     argv[0]);
        std::exit(2);
      }
      cli.json_path = argv[++i];
    } else if (arg.rfind("--json=", 0) == 0) {
      cli.json_path = std::string(arg.substr(7));
    } else if (!allow_extra) {
      std::fprintf(stderr,
                   "%s: unknown argument '%s'\nusage: %s [--smoke] "
                   "[--json <file>]\n",
                   argv[0], argv[i], argv[0]);
      std::exit(2);
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  return cli;
}

FigureJson::FigureJson(std::string figure_id, BenchCli cli)
    : cli_(std::move(cli)), doc_(Json::object()) {
  doc_.set("schema_version", 1);
  doc_.set("figure", std::move(figure_id));
  doc_.set("smoke", cli_.smoke);
  doc_.set("sections", Json::array());
  doc_.set("seeds", Json::array());
  doc_.set("notes", Json::array());
}

void FigureJson::header(std::ostream& os, const std::string& id,
                        const std::string& caption,
                        const std::string& params) {
  print_figure_header(os, id, caption, params);
  Json section = Json::object();
  section.set("id", id);
  section.set("caption", caption);
  section.set("params", params);
  section.set("columns", Json::array());
  section.set("rows", Json::array());
  Json& sections = *doc_.find("sections");
  sections.push_back(std::move(section));
  has_section_ = true;
}

void FigureJson::table(std::ostream& os, const Table& t) {
  t.print(os);
  REKEY_ENSURE_MSG(has_section_,
                   "FigureJson::table called before any header()");
  Json& sections = *doc_.find("sections");
  Json& section = sections.as_array().back();
  Json columns = Json::array();
  for (const std::string& h : t.headers()) columns.push_back(h);
  section.set("columns", std::move(columns));
  Json rows = Json::array();
  for (const auto& row : t.rows()) {
    Json cells = Json::array();
    for (const Table::Cell& c : row) {
      if (const auto* s = std::get_if<std::string>(&c)) {
        cells.push_back(*s);
      } else if (const auto* d = std::get_if<double>(&c)) {
        cells.push_back(*d);
      } else {
        cells.push_back(static_cast<std::int64_t>(std::get<long long>(c)));
      }
    }
    rows.push_back(std::move(cells));
  }
  section.set("rows", std::move(rows));
}

void FigureJson::note(std::ostream& os, const std::string& text) {
  os << '\n' << text << '\n';
  Json& notes = *doc_.find("notes");
  notes.push_back(text);
}

void FigureJson::add_seed(std::uint64_t seed) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(seed));
  Json& seeds = *doc_.find("seeds");
  seeds.push_back(std::string(buf));
}

void FigureJson::add_seeds(const std::vector<SweepConfig>& points) {
  for (const SweepConfig& p : points) add_seed(p.seed);
}

void FigureJson::set_field(const std::string& key, Json value) {
  doc_.set(key, std::move(value));
}

int FigureJson::write() {
  if (!enabled()) return 0;
  std::ofstream out(cli_.json_path, std::ios::out | std::ios::trunc);
  if (!out.is_open()) {
    std::cerr << "error: cannot write JSON to " << cli_.json_path << '\n';
    return 1;
  }
  doc_.dump_to(out, 1);
  out << '\n';
  return out.good() ? 0 : 1;
}

}  // namespace rekey::bench
