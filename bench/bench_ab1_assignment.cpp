// AB1 (ablation) — why UKA? User-oriented vs sequential key assignment.
//
// The paper's §4 motivates UKA by the claim that packing each user's
// encryptions into a single packet makes round-1 recovery likely. This
// ablation quantifies it: the sequential (minimal, duplication-free)
// assignment needs fewer packets in total, but spreads a user's
// encryptions over several packets — the probability of receiving ALL of
// them in one round drops from (1-p) to (1-p)^m.
//
// Trials are independent with per-trial seeds, so they fan out across the
// worker pool; results are identical for any REKEY_THREADS setting.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "common/parallel.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "keytree/marking.h"
#include "packet/assign.h"
#include "sweep.h"

using namespace rekey;

namespace {

struct AssignStats {
  double packets = 0;
  double dup = 0;
  double mean_pkts_per_user = 0;
  double max_pkts_per_user = 0;
  double p_round1 = 0;  // P(user gets all its packets), p = 0.05 loss
};

AssignStats evaluate(bool uka, std::size_t N, std::size_t L,
                     std::uint64_t seed, double loss) {
  Rng rng(seed);
  tree::KeyTree kt(4, rng.next_u64());
  kt.populate(N);
  std::vector<tree::MemberId> leaves;
  for (const auto pick : rng.sample_without_replacement(N, L))
    leaves.push_back(static_cast<tree::MemberId>(pick));
  tree::Marker m(kt);
  const auto upd = m.run({}, leaves);
  const auto payload = tree::generate_rekey_payload(kt, upd, 1);
  const auto assignment = uka ? packet::assign_keys(payload)
                              : packet::assign_keys_sequential(payload);
  const auto per_user = packet::packets_needed_per_user(payload, assignment);

  AssignStats s;
  s.packets = static_cast<double>(assignment.packets.size());
  s.dup = assignment.duplication_overhead();
  RunningStats pu;
  double p1 = 0;
  for (const std::size_t n : per_user) {
    pu.add(static_cast<double>(n));
    p1 += std::pow(1.0 - loss, static_cast<double>(n));
  }
  s.mean_pkts_per_user = pu.mean();
  s.max_pkts_per_user = pu.max();
  s.p_round1 = p1 / static_cast<double>(per_user.size());
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rekey::bench;
  const BenchCli cli = parse_bench_cli(argc, argv);
  FigureJson json("AB1", cli);

  json.header(
      std::cout, "AB1",
      "UKA vs sequential assignment: message size vs round-1 recovery",
      "N=4096, J=0, L=N/4, d=4, 46 encryptions/packet, loss p=5%; 3 trials");

  const std::uint64_t kTrials = cli.smoke ? 1 : 3;
  const std::size_t kGroupSize = cli.smoke ? 512 : 4096;
  const std::size_t kLeaves = kGroupSize / 4;
  const bool modes[] = {true, false};
  std::vector<AssignStats> stats(std::size(modes) * kTrials);
  parallel_for_each_index(stats.size(), [&](std::size_t i) {
    const bool uka = modes[i / kTrials];
    const std::uint64_t s = i % kTrials;
    stats[i] = evaluate(uka, kGroupSize, kLeaves, 100 + s, 0.05);
  });

  Table t({"assignment", "ENC packets", "duplication", "pkts/user mean",
           "pkts/user max", "P(all pkts in round 1)"});
  t.set_precision(3);
  for (std::size_t mode = 0; mode < std::size(modes); ++mode) {
    const bool uka = modes[mode];
    RunningStats pk, dup, mean_pu, max_pu, p1;
    for (std::uint64_t s = 0; s < kTrials; ++s) {
      const auto& st = stats[mode * kTrials + s];
      pk.add(st.packets);
      dup.add(st.dup);
      mean_pu.add(st.mean_pkts_per_user);
      max_pu.add(st.max_pkts_per_user);
      p1.add(st.p_round1);
    }
    t.add_row({std::string(uka ? "UKA (paper)" : "sequential (baseline)"),
               pk.mean(), dup.mean(), mean_pu.mean(), max_pu.mean(),
               p1.mean()});
  }
  json.table(std::cout, t);
  json.note(std::cout,
            "Shape check: sequential saves the duplication (~5-10% of "
            "packets) but needs >1 packet per user, cutting the chance "
            "of one-round recovery; UKA holds it at (1-p).");
  return json.write();
}
