// A3 — key-server scalability (the SIGCOMM paper's capacity analysis):
// unit costs are measured on this host (key encryption, GF(256) FEC
// byte rate, HMAC authenticator), then fed to the analytic model to
// answer "how often can a single server rekey a group of N users?".
#include <chrono>
#include <iostream>

#include <string>

#include "analysis/scalability.h"
#include "common/rng.h"
#include "common/table.h"
#include "crypto/keys.h"
#include "fec/gf256.h"
#include "fec/gf256_simd.h"
#include "fec/rse.h"
#include "keytree/marking.h"
#include "keytree/rekey_subtree.h"
#include "sweep.h"

using namespace rekey;

namespace {

using Clock = std::chrono::steady_clock;

double measure_encrypt_us(int iters) {
  crypto::KeyGenerator gen(1);
  const auto kek = gen.next();
  const auto plain = gen.next();
  volatile std::uint8_t sink = 0;
  const auto start = Clock::now();
  for (int i = 0; i < iters; ++i) {
    const auto e = crypto::encrypt_key(kek, plain, 1,
                                       static_cast<std::uint64_t>(i) + 1);
    sink = sink ^ e.ciphertext[0];
  }
  const auto us = std::chrono::duration<double, std::micro>(
                      Clock::now() - start)
                      .count();
  (void)sink;
  return us / iters;
}

double measure_fec_ns_per_byte(int iters) {
  // One parity over a k=10 block of 1023-byte packets, repeatedly.
  const fec::RseCoder coder(10);
  std::vector<Bytes> data(10, Bytes(1023, 0x5A));
  for (std::size_t i = 0; i < data.size(); ++i) data[i][0] = static_cast<std::uint8_t>(i);
  volatile std::uint8_t sink = 0;
  const auto start = Clock::now();
  for (int i = 0; i < iters; ++i) {
    const Bytes p = coder.encode_one(data, i % coder.max_parity());
    sink = sink ^ p[0];
  }
  const auto ns =
      std::chrono::duration<double, std::nano>(Clock::now() - start).count();
  (void)sink;
  return ns / (iters * 10.0 * 1023.0);  // per source byte processed
}

// Raw addmul_region byte rate for one kernel path, over the protocol's
// 1023-byte FEC regions — the A/B view of what the SIMD layer buys the
// server-side encode path.
double measure_kernel_ns_per_byte(const fec::RegionKernels& kernels,
                                  int iters) {
  Bytes dst(1023, 0x5A), src(1023, 0xC3);
  volatile std::uint8_t sink = 0;
  const auto start = Clock::now();
  for (int i = 0; i < iters; ++i) {
    kernels.addmul(dst.data(), src.data(), dst.size(),
                   static_cast<std::uint8_t>(i | 1));
    sink = sink ^ dst[0];
  }
  const auto ns =
      std::chrono::duration<double, std::nano>(Clock::now() - start).count();
  (void)sink;
  return ns / (iters * 1023.0);
}

// Marking + bookkeeping cost per emitted encryption: one J=0, L=N/4 batch
// on a 4096-user tree, timed without the crypto (the model already counts
// encrypt_per_key_us separately). Divided by the batch's encryption count
// so it plugs into the model as a per-encryption surcharge.
double measure_marking_us_per_enc(int trials) {
  double best_us = 1e300;
  std::size_t encs = 1;
  for (int t = 0; t < trials; ++t) {
    Rng rng(3 + static_cast<std::uint64_t>(t));
    tree::KeyTree kt(4, rng.next_u64());
    kt.populate(4096);
    std::vector<tree::MemberId> leaves;
    for (const auto pick : rng.sample_without_replacement(4096, 1024))
      leaves.push_back(static_cast<tree::MemberId>(pick));
    const auto start = Clock::now();
    tree::Marker m(kt);
    const auto upd = m.run({}, leaves);
    const auto us = std::chrono::duration<double, std::micro>(
                        Clock::now() - start)
                        .count();
    if (us < best_us) {
      best_us = us;
      encs = tree::generate_rekey_payload(kt, upd, 1).encryptions.size();
    }
  }
  return best_us / static_cast<double>(encs);
}

double measure_sign_us(int iters) {
  crypto::KeyGenerator gen(2);
  const auto key = gen.next();
  Bytes msg(100 * 1027, 0x33);  // a full rekey message body
  const auto start = Clock::now();
  volatile std::uint8_t sink = 0;
  for (int i = 0; i < iters; ++i) {
    msg[0] = static_cast<std::uint8_t>(i);
    sink = sink ^ crypto::message_authenticator(key, msg)[0];
  }
  const auto us = std::chrono::duration<double, std::micro>(
                      Clock::now() - start)
                      .count();
  (void)sink;
  return us / iters;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rekey::bench;
  const BenchCli cli = parse_bench_cli(argc, argv);
  FigureJson json("A3", cli);

  analysis::ServerCostParams params;
  params.encrypt_per_key_us = measure_encrypt_us(cli.smoke ? 200 : 5000);
  params.marking_per_enc_us = measure_marking_us_per_enc(cli.smoke ? 1 : 5);
  params.fec_per_byte_ns = measure_fec_ns_per_byte(cli.smoke ? 20 : 300);
  params.sign_us = measure_sign_us(cli.smoke ? 3 : 20);

  json.header(std::cout, "A3 (unit costs)",
              "measured server unit costs on this host",
              std::string("FEC kernel path: ") +
                  fec::simd_path_name(fec::active_simd_path()));
  Table units({"operation", "cost"});
  units.set_precision(3);
  units.add_row({std::string("key encryption (us)"),
                 params.encrypt_per_key_us});
  units.add_row({std::string("marking per encryption (us)"),
                 params.marking_per_enc_us});
  units.add_row({std::string("FEC GF(256) per source byte (ns)"),
                 params.fec_per_byte_ns});
  // Per-path kernel A/B: the same addmul pass on every compiled ISA path
  // this CPU runs, so the encode-cost row above can be attributed.
  for (const fec::SimdPath path : fec::supported_simd_paths()) {
    units.add_row({std::string("addmul_region ns/B (") +
                       fec::simd_path_name(path) + ")",
                   measure_kernel_ns_per_byte(fec::region_kernels(path),
                                              cli.smoke ? 1000 : 20000)});
  }
  units.add_row({std::string("message authenticator (us)"), params.sign_us});
  json.table(std::cout, units);

  json.header(
      std::cout, "A3",
      "single-server rekeying capacity vs group size",
      "J=0, L=N/4, d=4, k=10, rho=1.1, 1027-byte packets, 10 pkt/s pacing");
  Table t({"N", "E[encs]", "E[pkts]", "cpu ms", "MB/msg", "pacing s",
           "min interval s", "rekeys/hour"});
  t.set_precision(2);
  const std::vector<std::size_t> sizes =
      cli.smoke ? std::vector<std::size_t>{256, 4096, 65536}
                : std::vector<std::size_t>{256, 1024, 4096, 16384, 65536,
                                           262144, 1048576};
  for (const std::size_t N : sizes) {
    const auto p = analysis::evaluate_scalability(N, 0, N / 4, 4, 10, 1.1,
                                                  1027, 46, params);
    t.add_row({static_cast<long long>(N), p.encryptions, p.enc_packets,
               p.cpu_ms, p.bytes / 1e6, p.pacing_s, p.min_interval_s,
               p.max_rekeys_per_hour});
  }
  json.table(std::cout, t);

  json.note(std::cout,
            "Conclusion check (paper): processing is NOT the "
            "bottleneck at paper scale — pacing/bandwidth dominate; a "
            "single server sustains N=4096 with intervals of tens of "
            "seconds, and the interval must grow linearly with N.");
  return json.write();
}
