// AB6 (extension) — eager event-driven feedback vs round-based rounds
// (the protocol paper's Appendix-A suggestion). Same workload, same
// topology seeds: compare delivery latency (mean and worst-case, in ms)
// and server bandwidth.
//
// Each (alpha, mode) combination is self-contained (own topology + own
// seeds), so the six combos fan out across the worker pool; results are
// identical for any REKEY_THREADS setting.
#include <iostream>

#include "common/parallel.h"
#include "common/stats.h"
#include "common/table.h"
#include "sweep.h"
#include "transport/eager.h"

using namespace rekey;
using namespace rekey::bench;

namespace {

struct ComboResult {
  double mean_latency = 0;
  double worst_latency = 0;
  double bw = 0;
  double nacks = 0;
};

ComboResult run_combo(double alpha, bool eager, std::size_t group_size,
                      std::uint64_t messages) {
  transport::WorkloadConfig wc;
  wc.group_size = group_size;
  wc.leaves = group_size / 4;
  transport::ProtocolConfig cfg;
  cfg.adaptive_rho = false;
  cfg.max_multicast_rounds = 0;

  simnet::TopologyConfig tc;
  tc.num_users = group_size;
  tc.alpha = alpha;
  tc.p_high = 0.2;
  tc.p_low = 0.02;
  tc.p_source = 0.01;

  ComboResult r;
  if (!eager) {
    simnet::Topology topo(tc, 1234);
    transport::RhoController rho(cfg, 1);
    transport::RekeySession session(topo, cfg, rho);
    RunningStats dur, bw, nacks;
    for (std::uint64_t i = 0; i < messages; ++i) {
      auto msg = transport::generate_message(wc, 500 + i,
                                             static_cast<std::uint32_t>(i));
      const auto m = session.run_message(
          msg.payload, std::move(msg.assignment), msg.old_ids);
      dur.add(m.duration_ms);
      bw.add(m.bandwidth_overhead());
      nacks.add(static_cast<double>(m.total_nacks));
    }
    r.mean_latency = dur.mean();  // all users wait for round ends
    r.worst_latency = dur.max();
    r.bw = bw.mean();
    r.nacks = nacks.mean();
  } else {
    simnet::Topology topo(tc, 1234);
    transport::EagerSession session(topo, cfg);
    RunningStats mean_lat, max_lat, bw, nacks;
    for (std::uint64_t i = 0; i < messages; ++i) {
      auto msg = transport::generate_message(wc, 500 + i,
                                             static_cast<std::uint32_t>(i));
      const auto m = session.run_message(
          msg.payload, std::move(msg.assignment), msg.old_ids, 0);
      mean_lat.add(m.mean_latency_ms);
      max_lat.add(m.max_latency_ms);
      bw.add(m.bandwidth_overhead());
      nacks.add(static_cast<double>(m.nacks_received));
    }
    r.mean_latency = mean_lat.mean();
    r.worst_latency = max_lat.max();
    r.bw = bw.mean();
    r.nacks = nacks.mean();
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchCli cli = parse_bench_cli(argc, argv);
  FigureJson json("AB6", cli);

  json.header(
      std::cout, "AB6",
      "eager (NACK-on-loss-detection) vs round-based transport",
      "N=4096, L=N/4, k=10, rho=1, alpha sweep, 5 messages/point");

  const std::size_t kGroupSize = cli.smoke ? 256 : 4096;
  const std::uint64_t kMessages = cli.smoke ? 2 : 5;
  const double alphas[] = {0.0, 0.2, 1.0};
  std::vector<ComboResult> results(std::size(alphas) * 2);
  parallel_for_each_index(results.size(), [&](std::size_t i) {
    results[i] =
        run_combo(alphas[i / 2], i % 2 == 1, kGroupSize, kMessages);
  });
  json.add_seed(1234);  // shared topology seed

  Table t({"alpha", "mode", "mean latency ms", "worst latency ms",
           "bw overhead", "NACKs/msg"});
  t.set_precision(1);
  for (std::size_t a = 0; a < std::size(alphas); ++a) {
    for (int eager = 0; eager < 2; ++eager) {
      const auto& r = results[a * 2 + eager];
      t.add_row({alpha_label(alphas[a]),
                 std::string(eager ? "eager" : "round-based"),
                 r.mean_latency, r.worst_latency, r.bw, r.nacks});
    }
  }
  json.table(std::cout, t);
  json.note(std::cout,
            "Shape check: eager cuts MEAN delivery latency ~2.5-4x "
            "(users recover as their block completes instead of at "
            "round boundaries) at identical bandwidth; the price is "
            "3-5x more NACK traffic, and the worst case is only "
            "comparable — which is why the paper pairs rounds with a "
            "unicast phase instead.");
  return json.write();
}
