// AB6 (extension) — eager event-driven feedback vs round-based rounds
// (the protocol paper's Appendix-A suggestion). Same workload, same
// topology seeds: compare delivery latency (mean and worst-case, in ms)
// and server bandwidth.
#include <iostream>

#include "common/stats.h"
#include "common/table.h"
#include "sweep.h"
#include "transport/eager.h"

using namespace rekey;
using namespace rekey::bench;

int main() {
  print_figure_header(
      std::cout, "AB6",
      "eager (NACK-on-loss-detection) vs round-based transport",
      "N=4096, L=N/4, k=10, rho=1, alpha sweep, 5 messages/point");

  Table t({"alpha", "mode", "mean latency ms", "worst latency ms",
           "bw overhead", "NACKs/msg"});
  t.set_precision(1);

  for (const double alpha : {0.0, 0.2, 1.0}) {
    transport::WorkloadConfig wc;
    wc.group_size = 4096;
    wc.leaves = 1024;
    transport::ProtocolConfig cfg;
    cfg.adaptive_rho = false;
    cfg.max_multicast_rounds = 0;

    simnet::TopologyConfig tc;
    tc.num_users = 4096;
    tc.alpha = alpha;
    tc.p_high = 0.2;
    tc.p_low = 0.02;
    tc.p_source = 0.01;

    // Round-based.
    {
      simnet::Topology topo(tc, 1234);
      transport::RhoController rho(cfg, 1);
      transport::RekeySession session(topo, cfg, rho);
      RunningStats dur, bw, nacks;
      for (std::uint64_t i = 0; i < 5; ++i) {
        auto msg = transport::generate_message(wc, 500 + i,
                                               static_cast<std::uint32_t>(i));
        const auto m = session.run_message(
            msg.payload, std::move(msg.assignment), msg.old_ids);
        dur.add(m.duration_ms);
        bw.add(m.bandwidth_overhead());
        nacks.add(static_cast<double>(m.total_nacks));
      }
      t.add_row({alpha_label(alpha), std::string("round-based"),
                 dur.mean(),  // round-based: all users wait for round ends
                 dur.max(), bw.mean(), nacks.mean()});
    }
    // Eager.
    {
      simnet::Topology topo(tc, 1234);
      transport::EagerSession session(topo, cfg);
      RunningStats mean_lat, max_lat, bw, nacks;
      for (std::uint64_t i = 0; i < 5; ++i) {
        auto msg = transport::generate_message(wc, 500 + i,
                                               static_cast<std::uint32_t>(i));
        const auto m = session.run_message(
            msg.payload, std::move(msg.assignment), msg.old_ids, 0);
        mean_lat.add(m.mean_latency_ms);
        max_lat.add(m.max_latency_ms);
        bw.add(m.bandwidth_overhead());
        nacks.add(static_cast<double>(m.nacks_received));
      }
      t.add_row({alpha_label(alpha), std::string("eager"), mean_lat.mean(),
                 max_lat.max(), bw.mean(), nacks.mean()});
    }
  }
  t.print(std::cout);
  std::cout << "\nShape check: eager cuts MEAN delivery latency ~2.5-4x "
               "(users recover as their block completes instead of at "
               "round boundaries) at identical bandwidth; the price is "
               "3-5x more NACK traffic, and the worst case is only "
               "comparable — which is why the paper pairs rounds with a "
               "unicast phase instead.\n";
  return 0;
}
