// Shared experiment driver for the figure benches: runs a sequence of
// rekey messages with a persistent topology and RhoController (as in the
// paper, where adaptation state carries across messages) and aggregates
// the metrics the figures plot.
//
// Paper default parameters (§5.2): N=4096, d=4, J=0, L=N/4, alpha=20%,
// p_high=20%, p_low=2%, p_source=1%, 10 packets/s, 1027-byte ENC packets,
// k=10, numNACK=20. Message counts are trimmed relative to the paper's 25
// on the heaviest sweeps so the whole harness finishes in minutes; each
// bench states its count.
//
// Sweep points are independent simulations, so a grid of them fans out
// across a work-stealing thread pool (common/parallel.h). Every point
// carries its own seed — benches derive them with point_seed(base, index)
// so each point gets a dedicated RNG stream — which makes the grid's
// results bit-identical no matter the thread count or schedule. The
// REKEY_THREADS environment variable overrides the worker count; 1 runs
// the classic serial path.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "transport/metrics.h"
#include "transport/session.h"
#include "transport/workload.h"

namespace rekey::bench {

struct SweepConfig {
  std::size_t group_size = 4096;
  std::size_t joins = 0;
  std::size_t leaves = 1024;  // N/4
  unsigned degree = 4;

  transport::ProtocolConfig protocol;  // k, rho, numNACK, rounds, ...

  double alpha = 0.20;
  double p_high = 0.20;
  double p_low = 0.02;
  double p_source = 0.01;
  bool burst_loss = true;

  int messages = 10;
  std::uint64_t seed = 1;
};

// Runs `messages` independent batches through one persistent session
// (topology + rho controller state carry across messages).
transport::RunMetrics run_sweep(const SweepConfig& config);

// Dedicated per-point RNG stream: hash(base_seed, point_index). Grid
// benches derive every point's SweepConfig::seed this way so streams are
// independent and reproducible regardless of execution order.
std::uint64_t point_seed(std::uint64_t base_seed, std::uint64_t point_index);

// Runs every point of a sweep grid, fanning out across threads (threads
// == 0 resolves REKEY_THREADS / hardware concurrency; 1 is the serial
// path). results[i] corresponds to points[i]; values are bit-identical
// for every thread count because each point is a pure function of its
// config.
std::vector<transport::RunMetrics> run_sweep_grid(
    const std::vector<SweepConfig>& points, unsigned threads = 0);

// Convenience: the paper's alpha sweep {0, 20%, 40%, 100%}.
inline const double kAlphas[] = {0.0, 0.2, 0.4, 1.0};

std::string alpha_label(double alpha);

}  // namespace rekey::bench
