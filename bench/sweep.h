// Shared experiment driver for the figure benches: runs a sequence of
// rekey messages with a persistent topology and RhoController (as in the
// paper, where adaptation state carries across messages) and aggregates
// the metrics the figures plot.
//
// Paper default parameters (§5.2): N=4096, d=4, J=0, L=N/4, alpha=20%,
// p_high=20%, p_low=2%, p_source=1%, 10 packets/s, 1027-byte ENC packets,
// k=10, numNACK=20. Message counts are trimmed relative to the paper's 25
// on the heaviest sweeps so the whole harness finishes in minutes; each
// bench states its count.
//
// Sweep points are independent simulations, so a grid of them fans out
// across a work-stealing thread pool (common/parallel.h). Every point
// carries its own seed — benches derive them with point_seed(base, index)
// so each point gets a dedicated RNG stream — which makes the grid's
// results bit-identical no matter the thread count or schedule. The
// REKEY_THREADS environment variable overrides the worker count; 1 runs
// the classic serial path.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/table.h"
#include "transport/metrics.h"
#include "transport/session.h"
#include "transport/workload.h"

namespace rekey::bench {

struct SweepConfig {
  std::size_t group_size = 4096;
  std::size_t joins = 0;
  std::size_t leaves = 1024;  // N/4
  unsigned degree = 4;

  transport::ProtocolConfig protocol;  // k, rho, numNACK, rounds, ...

  double alpha = 0.20;
  double p_high = 0.20;
  double p_low = 0.02;
  double p_source = 0.01;
  bool burst_loss = true;

  // Degraded-network scenario; an inactive plan (the default) leaves the
  // transport on its exact fault-free path, so existing benches and their
  // goldens are unaffected. The injector seed is derived from `seed`, so a
  // chaos point replays bit-identically from (faults, seed) alone.
  simnet::FaultPlan faults;

  int messages = 10;
  std::uint64_t seed = 1;
};

// Runs `messages` independent batches through one persistent session
// (topology + rho controller state carry across messages).
transport::RunMetrics run_sweep(const SweepConfig& config);

// Dedicated per-point RNG stream: hash(base_seed, point_index). Grid
// benches derive every point's SweepConfig::seed this way so streams are
// independent and reproducible regardless of execution order.
std::uint64_t point_seed(std::uint64_t base_seed, std::uint64_t point_index);

// Runs every point of a sweep grid, fanning out across threads (threads
// == 0 resolves REKEY_THREADS / hardware concurrency; 1 is the serial
// path). results[i] corresponds to points[i]; values are bit-identical
// for every thread count because each point is a pure function of its
// config.
std::vector<transport::RunMetrics> run_sweep_grid(
    const std::vector<SweepConfig>& points, unsigned threads = 0);

// Convenience: the paper's alpha sweep {0, 20%, 40%, 100%}.
inline const double kAlphas[] = {0.0, 0.2, 0.4, 1.0};

std::string alpha_label(double alpha);

// Command line shared by every bench binary:
//   --json <file>   emit the figure as a schema-stable JSON document
//                   alongside the ASCII tables (tools/bench_diff.py
//                   compares such documents across runs)
//   --smoke         shrink the sweep to a seconds-scale deterministic run
//                   (used by the schema test and the CI regression gate)
// Unknown arguments abort with a usage message. Consumed arguments are
// removed from argv so benches that forward argv (google-benchmark) can
// layer their own flags.
struct BenchCli {
  bool smoke = false;
  std::string json_path;  // empty = ASCII only
};
// allow_extra keeps unrecognized arguments in argv (for benches that layer
// another flag parser, e.g. google-benchmark); otherwise they abort.
BenchCli parse_bench_cli(int& argc, char** argv, bool allow_extra = false);

// Captures the figure output into a JSON document while printing the
// usual ASCII tables. One section per figure banner:
//
//   {"schema_version":1, "figure":"F8", "smoke":false,
//    "sections":[{"id":"F8 (left)","caption":...,"params":...,
//                 "columns":[...], "rows":[[...],...]}],
//    "seeds":["0x1p...", ...], "notes":[...]}
//
// Cell types survive (long long -> JSON int, double -> JSON float), which
// is what lets bench_diff.py hold integer fields exact while giving float
// fields a tolerance. Seeds are hex strings so 64-bit values round-trip.
class FigureJson {
 public:
  FigureJson(std::string figure_id, BenchCli cli);

  bool enabled() const { return !cli_.json_path.empty(); }
  bool smoke() const { return cli_.smoke; }

  // Prints the figure banner and opens a new JSON section.
  void header(std::ostream& os, const std::string& id,
              const std::string& caption, const std::string& params);
  // Prints the table and captures it into the most recent section.
  void table(std::ostream& os, const Table& t);
  // Prints the shape-check line (with surrounding newlines, as the benches
  // did by hand) and captures it under "notes".
  void note(std::ostream& os, const std::string& text);

  // Per-point provenance: the RNG seed of every sweep point, in run order.
  void add_seed(std::uint64_t seed);
  void add_seeds(const std::vector<SweepConfig>& points);

  // Extra top-level document fields (axes, fixed parameters, ...).
  void set_field(const std::string& key, Json value);

  // Writes the document when --json was given; returns the bench's exit
  // code (0, or 1 when the file cannot be written).
  int write();

 private:
  BenchCli cli_;
  Json doc_;
  bool has_section_ = false;
};

}  // namespace rekey::bench
