// A2 — the SIGCOMM paper's transport analysis: binomial round-1 NACK and
// latency model versus the packet-level simulator on memoryless links.
#include <iostream>

#include "analysis/transport_model.h"
#include "common/stats.h"
#include "common/table.h"
#include "sweep.h"

using namespace rekey;
using namespace rekey::bench;

int main() {
  constexpr std::uint64_t kBaseSeed = 0xA2;
  const int parities[] = {0, 2, 4, 6, 10};

  print_figure_header(
      std::cout, "A2",
      "round-1 NACKs: binomial model vs packet-level simulation",
      "N=4096, L=N/4, k=10, Bernoulli links (model assumption), fixed rho, "
      "6 messages/point");

  std::vector<SweepConfig> points;
  for (const int a : parities) {
    SweepConfig cfg;
    cfg.burst_loss = false;
    cfg.alpha = 0.2;
    cfg.protocol.adaptive_rho = false;
    cfg.protocol.initial_rho = 1.0 + a / 10.0;
    cfg.protocol.max_multicast_rounds = 0;
    cfg.messages = 6;
    cfg.seed = point_seed(kBaseSeed, points.size());
    points.push_back(cfg);
  }
  const auto runs = run_sweep_grid(points);

  Table t({"proactive parities", "rho", "model E[NACKs]", "sim E[NACKs]",
           "ratio"});
  t.set_precision(2);
  for (std::size_t i = 0; i < std::size(parities); ++i) {
    const int a = parities[i];
    const double sim = runs[i].mean_round1_nacks();
    const double model = analysis::expected_round1_nacks(
        4096 - 1024, 0.2, 0.2, 0.02, 0.01, 10, a);
    t.add_row({static_cast<long long>(a), 1.0 + a / 10.0, model, sim,
               model > 0 ? sim / model : 0.0});
  }
  t.print(std::cout);

  print_figure_header(std::cout, "A2 (latency)",
                      "expected rounds per user: model vs loss rate",
                      "k=10, no proactive parities");
  Table lat({"loss p", "model E[rounds]"});
  lat.set_precision(4);
  for (const double p : {0.02, 0.05, 0.1, 0.2, 0.3}) {
    lat.add_row({p, analysis::expected_user_rounds(10, 0, p)});
  }
  lat.print(std::cout);

  std::cout << "\nShape check: model within ~35% of simulation across the "
               "proactivity sweep; E[rounds] ~1 at low loss.\n";
  return 0;
}
