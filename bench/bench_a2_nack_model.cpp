// A2 — the SIGCOMM paper's transport analysis: binomial round-1 NACK and
// latency model versus the packet-level simulator on memoryless links.
#include <iostream>

#include "analysis/transport_model.h"
#include "common/stats.h"
#include "common/table.h"
#include "sweep.h"

using namespace rekey;
using namespace rekey::bench;

int main(int argc, char** argv) {
  const BenchCli cli = parse_bench_cli(argc, argv);
  FigureJson json("A2", cli);

  constexpr std::uint64_t kBaseSeed = 0xA2;
  const std::vector<int> parities = cli.smoke ? std::vector<int>{0, 4, 10}
                                              : std::vector<int>{0, 2, 4, 6, 10};
  const int kMessages = cli.smoke ? 2 : 6;
  const std::size_t kGroupSize = cli.smoke ? 256 : 4096;
  const std::size_t kLeaves = kGroupSize / 4;

  json.header(
      std::cout, "A2",
      "round-1 NACKs: binomial model vs packet-level simulation",
      "N=4096, L=N/4, k=10, Bernoulli links (model assumption), fixed rho, "
      "6 messages/point");

  std::vector<SweepConfig> points;
  for (const int a : parities) {
    SweepConfig cfg;
    cfg.group_size = kGroupSize;
    cfg.leaves = kLeaves;
    cfg.burst_loss = false;
    cfg.alpha = 0.2;
    cfg.protocol.adaptive_rho = false;
    cfg.protocol.initial_rho = 1.0 + a / 10.0;
    cfg.protocol.max_multicast_rounds = 0;
    cfg.messages = kMessages;
    cfg.seed = point_seed(kBaseSeed, points.size());
    points.push_back(cfg);
  }
  const auto runs = run_sweep_grid(points);
  json.add_seeds(points);

  Table t({"proactive parities", "rho", "model E[NACKs]", "sim E[NACKs]",
           "ratio"});
  t.set_precision(2);
  for (std::size_t i = 0; i < parities.size(); ++i) {
    const int a = parities[i];
    const double sim = runs[i].mean_round1_nacks();
    const double model = analysis::expected_round1_nacks(
        kGroupSize - kLeaves, 0.2, 0.2, 0.02, 0.01, 10, a);
    t.add_row({static_cast<long long>(a), 1.0 + a / 10.0, model, sim,
               model > 0 ? sim / model : 0.0});
  }
  json.table(std::cout, t);

  json.header(std::cout, "A2 (latency)",
              "expected rounds per user: model vs loss rate",
              "k=10, no proactive parities");
  Table lat({"loss p", "model E[rounds]"});
  lat.set_precision(4);
  for (const double p : {0.02, 0.05, 0.1, 0.2, 0.3}) {
    lat.add_row({p, analysis::expected_user_rounds(10, 0, p)});
  }
  json.table(std::cout, lat);

  json.note(std::cout,
            "Shape check: model within ~35% of simulation across the "
            "proactivity sweep; E[rounds] ~1 at low loss.");
  return json.write();
}
