// F8 — block-size effects at rho=1 (protocol paper Fig 8).
//
// Left:  average server bandwidth overhead (h'/h) vs block size k, for
//        alpha in {0, 20%, 40%, 100%}; flat for k >= 5, elevated at the
//        extremes (k=1 granularity, k=50 last-block duplicates).
// Right: relative overall FEC encoding time vs k (k time units per parity
//        at block size k): ~linear in k.
#include <iostream>

#include "common/table.h"
#include "sweep.h"

using namespace rekey;
using namespace rekey::bench;

int main(int argc, char** argv) {
  const BenchCli cli = parse_bench_cli(argc, argv);
  FigureJson json("F8", cli);

  const std::vector<std::size_t> ks =
      cli.smoke ? std::vector<std::size_t>{1, 10, 50}
                : std::vector<std::size_t>{1, 5, 10, 20, 30, 40, 50};
  const int kMessages = cli.smoke ? 2 : 8;
  constexpr std::uint64_t kBaseSeed = 0xF08;

  std::vector<SweepConfig> points;
  for (const std::size_t k : ks) {
    for (const double alpha : kAlphas) {
      SweepConfig cfg;
      if (cli.smoke) {
        cfg.group_size = 256;
        cfg.leaves = 64;
      }
      cfg.alpha = alpha;
      cfg.protocol.block_size = k;
      cfg.protocol.adaptive_rho = false;
      cfg.protocol.initial_rho = 1.0;
      cfg.protocol.max_multicast_rounds = 0;  // multicast until done
      cfg.messages = kMessages;
      cfg.seed = point_seed(kBaseSeed, points.size());
      points.push_back(cfg);
    }
  }
  const auto runs = run_sweep_grid(points);
  json.add_seeds(points);

  json.header(
      std::cout, "F8 (left)", "average server bandwidth overhead vs k",
      "N=4096, L=N/4, rho=1 fixed, multicast-only, 8 messages/point");

  // parity totals collected for the right-hand table.
  std::vector<std::vector<double>> parity_time(std::size(kAlphas));

  Table left({"k", "alpha=0", "alpha=20%", "alpha=40%", "alpha=100%"});
  left.set_precision(3);
  std::size_t point = 0;
  for (const std::size_t k : ks) {
    std::vector<Table::Cell> row{static_cast<long long>(k)};
    for (std::size_t a = 0; a < std::size(kAlphas); ++a) {
      const auto& run = runs[point++];
      row.push_back(run.mean_bandwidth_overhead());
      double parities = 0;
      for (const auto& m : run.messages)
        parities += static_cast<double>(m.proactive_parities +
                                        m.reactive_parities);
      parity_time[a].push_back(parities / kMessages *
                               static_cast<double>(k));
    }
    left.add_row(row);
  }
  json.table(std::cout, left);

  json.header(
      std::cout, "F8 (right)", "relative overall FEC encoding time vs k",
      "time = (#PARITY packets) * k units; same runs as the left table");
  Table right({"k", "alpha=0", "alpha=20%", "alpha=40%", "alpha=100%"});
  right.set_precision(0);
  for (std::size_t i = 0; i < ks.size(); ++i) {
    right.add_row({static_cast<long long>(ks[i]), parity_time[0][i],
                   parity_time[1][i], parity_time[2][i],
                   parity_time[3][i]});
  }
  json.table(std::cout, right);

  json.note(std::cout,
            "Shape check: overhead flat for k >= 5 (bumps at k=1 and "
            "k=50); encoding time ~linear in k.");
  return json.write();
}
