// W1 — real-wire rekey throughput: rekeyd's pipeline over UDP loopback.
//
// Runs the key-server daemon (wire/daemon.h) and a set of client fleets
// (wire/fleet.h) in one process, each on its own UDP socket, and drives
// churn batches through the full wire protocol: subscription, slot maps,
// data bursts via sendmmsg, lockstep round marks/reports, NACK-driven
// reactive parities, unicast USR fragments, and the Fin handshake.
//
// Two scenarios: a zero-loss run (every client recovers in round 1) and
// a deterministically shaped lossy run (client-side Bernoulli draws from
// a fixed seed — identical shaping regardless of socket timing, so
// protocol counters stay golden-diffable even though the transport is a
// real kernel socket). Delivery-composition columns are exact; the
// throughput section's wall-clock columns (wall_ms, kpkt_s, mb_s,
// recovery percentiles, syscalls) are hardware-dependent and diffed with
// unbounded tolerance in CI.
//
// Every scenario runs once per wire backend (wire/backend.h): epoll
// always, io_uring when the kernel supports it. The delivery and shaping
// counters must come out backend-invariant — the same differential the
// wire_backend_test suite enforces — while the throughput table's
// syscalls column shows what the io_uring backend buys: linked-SQE
// submits and multishot receives in place of per-64-datagram sendmmsg/
// recvmmsg/epoll_wait calls.
#include <algorithm>
#include <chrono>
#include <iostream>
#include <thread>
#include <vector>

#include "common/ensure.h"
#include "sweep.h"
#include "wire/backend.h"
#include "wire/daemon.h"
#include "wire/fleet.h"
#include "wire/udp.h"

namespace {

using namespace rekey;
using Clock = std::chrono::steady_clock;

constexpr std::uint32_t kLoopback = 0x7F000001;  // 127.0.0.1

struct WireRun {
  wire::DaemonStats daemon;
  wire::FleetStats fleet;  // aggregated over all fleets
  double wall_ms = 0.0;
  std::uint64_t syscalls = 0;  // wire-layer syscalls across all sockets
};

struct Scenario {
  const char* name;
  std::uint32_t clients;
  unsigned endpoints;
  std::uint32_t batches;
  std::uint32_t churn;  // joins == leaves per batch
  double down_loss;
  double up_loss;
  int max_rounds;
  // Small packets force multiple FEC blocks with little duplication, so
  // the lossy scenario actually exercises NACKs and reactive parities
  // (with few packets the partition pads blocks by duplicating them and
  // almost any frame recovers a client).
  std::size_t packet_size;
  // 0 = auto-negotiate (v1 at these group sizes); 2 forces the wide-slot
  // frame family so the per-frame overhead of u32 slot ids is measurable
  // against the otherwise-identical zero-loss scenario.
  unsigned wire_version = 0;
};

WireRun run_scenario(const Scenario& sc, wire::WireBackend backend,
                     std::uint64_t shape_seed) {
  wire::DaemonConfig dc;
  dc.clients = sc.clients;
  dc.churn_pool = std::max<std::uint32_t>(64, 2 * sc.churn);
  dc.batches = sc.batches;
  dc.churn_joins = sc.churn;
  dc.churn_leaves = sc.churn;
  dc.max_multicast_rounds = sc.max_rounds;
  dc.protocol.packet_size = sc.packet_size;
  dc.round_wait_ms = 20000;
  dc.retry_ms = 20;
  dc.wire_version = sc.wire_version;

  auto daemon_udp = wire::make_socket_wire(backend, kLoopback, 0);
  const wire::Endpoint server = daemon_udp->local_endpoint();
  wire::KeyServerDaemon daemon(*daemon_udp, dc);

  const std::uint64_t sys0 = wire::wire_syscalls().value();
  const auto t0 = Clock::now();
  wire::DaemonStats ds;
  std::thread daemon_thread([&] { ds = daemon.run(); });

  // Contiguous uid slices, one fleet+socket per endpoint thread.
  std::vector<wire::FleetStats> fss(sc.endpoints);
  std::vector<std::thread> fleets;
  const std::uint32_t base = sc.clients / sc.endpoints;
  const std::uint32_t extra = sc.clients % sc.endpoints;
  std::uint32_t uid = 0;
  for (unsigned t = 0; t < sc.endpoints; ++t) {
    const std::uint32_t count = base + (t < extra ? 1 : 0);
    fleets.emplace_back([&, t, uid, count] {
      auto udp = wire::make_socket_wire(backend, kLoopback, 0);
      wire::FleetConfig fc;
      fc.first_uid = uid;
      fc.count = count;
      fc.shaping.down_loss = sc.down_loss;
      fc.shaping.up_loss = sc.up_loss;
      fc.shaping.seed = shape_seed;
      wire::ClientFleet fleet(*udp, server, fc);
      fss[t] = fleet.run();
    });
    uid += count;
  }
  for (auto& f : fleets) f.join();
  daemon_thread.join();

  WireRun r;
  r.wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  r.syscalls = wire::wire_syscalls().value() - sys0;
  r.daemon = ds;
  for (const wire::FleetStats& fs : fss) {
    r.fleet.clients += fs.clients;
    r.fleet.batches = std::max(r.fleet.batches, fs.batches);
    r.fleet.recovered += fs.recovered;
    r.fleet.via_usr += fs.via_usr;
    r.fleet.unrecovered += fs.unrecovered;
    r.fleet.data_frames += fs.data_frames;
    r.fleet.shaped_off += fs.shaped_off;
    r.fleet.nacks_suppressed += fs.nacks_suppressed;
    r.fleet.finished = fleets.empty() ? false : true;
    for (const wire::FleetStats& check : fss)
      r.fleet.finished = r.fleet.finished && check.finished;
    r.fleet.recovery_ms.insert(r.fleet.recovery_ms.end(),
                               fs.recovery_ms.begin(), fs.recovery_ms.end());
  }
  std::sort(r.fleet.recovery_ms.begin(), r.fleet.recovery_ms.end());
  return r;
}

double pct(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  return sorted[static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1))];
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rekey::bench;
  BenchCli cli = parse_bench_cli(argc, argv);
  FigureJson json("W1", cli);

  const std::uint32_t N = cli.smoke ? 512 : (1u << 15);
  const unsigned endpoints = cli.smoke ? 2 : 8;
  const std::uint32_t batches = cli.smoke ? 2 : 3;
  const std::uint32_t churn = cli.smoke ? 128 : 256;
  const std::uint64_t shape_seed = 0x5751ull;  // fixed: shaping is golden
  json.add_seed(shape_seed);

  const std::size_t shaped_pkt = cli.smoke ? 300 : 1027;
  const Scenario scenarios[] = {
      {"zero-loss", N, endpoints, batches, churn, 0.0, 0.0, 8, 1027},
      {"shaped", N, endpoints, batches, churn, 0.15, 0.05, 4, shaped_pkt},
      // Same run as zero-loss but forced onto the wide-slot (v2) frames:
      // the delivery/throughput deltas against zero-loss are the cost of
      // 32-bit slot ids (6 bytes per ENC header, 4 per USR header).
      {"wide-slot", N, endpoints, batches, churn, 0.0, 0.0, 8, 1027,
       wire::kWireV2},
  };
  // Epoll rows first (they are the golden reference), then the same
  // scenarios again on io_uring when the kernel can run it.
  std::vector<wire::WireBackend> backends = {wire::WireBackend::kEpoll};
  if (wire::io_uring_supported())
    backends.push_back(wire::WireBackend::kIoUring);
  else
    std::cerr << "bench_w1: io_uring unsupported on this kernel; "
                 "emitting epoll rows only\n";

  struct Row {
    const Scenario* sc;
    wire::WireBackend backend;
    WireRun run;
  };
  std::vector<Row> rows;
  for (const wire::WireBackend b : backends)
    for (const Scenario& sc : scenarios)
      rows.push_back({&sc, b, run_scenario(sc, b, shape_seed)});

  json.header(std::cout, "W1 (delivery)",
              "wire protocol composition per scenario and backend",
              "d=4, k=10, UDP loopback, MTU 1500, " +
                  std::to_string(endpoints) + " endpoints");
  {
    Table t({"scenario", "backend", "N", "pkt_size", "wire_v", "batches",
             "churn", "enc_pkts", "slots", "rounds", "react_par", "waves",
             "usr_frags", "recovered", "via_usr", "gave_up", "rho_final"});
    t.set_precision(3);
    for (const Row& row : rows) {
      const Scenario& sc = *row.sc;
      const wire::DaemonStats& d = row.run.daemon;
      t.add_row({std::string(sc.name), wire::backend_name(row.backend),
                 static_cast<long long>(sc.clients),
                 static_cast<long long>(sc.packet_size),
                 static_cast<long long>(d.wire_version),
                 static_cast<long long>(d.batches_run),
                 static_cast<long long>(sc.churn),
                 static_cast<long long>(d.enc_packets),
                 static_cast<long long>(d.slots),
                 static_cast<long long>(d.rounds),
                 static_cast<long long>(d.reactive_parities),
                 static_cast<long long>(d.unicast_waves),
                 static_cast<long long>(d.usr_frags),
                 static_cast<long long>(d.recovered),
                 static_cast<long long>(d.via_usr),
                 static_cast<long long>(d.gave_up), d.rho_final});
    }
    json.table(std::cout, t);
  }

  json.header(std::cout, "W1 (shaping)",
              "deterministic client-side loss draws (fixed seed)",
              "down_loss/up_loss per scenario; counters are seed-exact");
  {
    Table t({"scenario", "backend", "down_loss", "up_loss", "frames_rx",
             "shaped_off", "nacks_dropped", "nack_users"});
    t.set_precision(3);
    for (const Row& row : rows) {
      t.add_row({std::string(row.sc->name), wire::backend_name(row.backend),
                 row.sc->down_loss, row.sc->up_loss,
                 static_cast<long long>(row.run.fleet.data_frames),
                 static_cast<long long>(row.run.fleet.shaped_off),
                 static_cast<long long>(row.run.fleet.nacks_suppressed),
                 static_cast<long long>(row.run.daemon.nack_users)});
    }
    json.table(std::cout, t);
  }

  json.header(std::cout, "W1 (throughput)",
              "wall-clock rates and rekey-recovery latency percentiles",
              "timing columns are hardware-dependent (CI tolerance "
              "unbounded)");
  {
    Table t({"scenario", "backend", "data_frames", "data_mb", "b_per_frame",
             "wall_ms", "kpkt_s", "mb_s", "syscalls", "sys_per_batch",
             "p50_ms", "p90_ms", "p99_ms", "max_ms"});
    t.set_precision(3);
    for (const Row& row : rows) {
      const wire::DaemonStats& d = row.run.daemon;
      const double mb = static_cast<double>(d.data_bytes) / 1e6;
      const double s = row.run.wall_ms / 1e3;
      const auto& lat = row.run.fleet.recovery_ms;
      // b_per_frame is exact (two deterministic counters): the zero-loss
      // vs wide-slot delta is the measured wide-header overhead. syscalls
      // counts every wire-layer kernel entry across the daemon and all
      // fleet sockets — the epoll-vs-io_uring contrast this table exists
      // to show — but retransmit timing makes it jitter, so CI diffs it
      // unbounded like the wall-clock columns.
      t.add_row({std::string(row.sc->name), wire::backend_name(row.backend),
                 static_cast<long long>(d.data_frames), mb,
                 d.data_frames == 0
                     ? 0.0
                     : static_cast<double>(d.data_bytes) /
                           static_cast<double>(d.data_frames),
                 row.run.wall_ms,
                 static_cast<double>(d.data_frames) / s / 1e3, mb / s,
                 static_cast<long long>(row.run.syscalls),
                 static_cast<double>(row.run.syscalls) /
                     static_cast<double>(d.batches_run == 0
                                             ? 1
                                             : d.batches_run),
                 pct(lat, 0.50), pct(lat, 0.90), pct(lat, 0.99),
                 lat.empty() ? 0.0 : lat.back()});
    }
    json.table(std::cout, t);
  }

  // The wire path is only worth benchmarking if it actually delivered.
  bool all_recovered = true;
  for (const Row& row : rows)
    all_recovered = all_recovered && row.run.fleet.finished &&
                    row.run.fleet.unrecovered == 0 &&
                    row.run.fleet.recovered ==
                        static_cast<std::uint64_t>(row.run.fleet.clients) *
                            row.run.fleet.batches;
  REKEY_ENSURE_MSG(all_recovered,
                   "a wire scenario left clients unrecovered or unfinished");
  json.note(std::cout,
            "Delivery and shaping counters are deterministic (seeded "
            "client-side shaping; lockstep rounds) and backend-invariant: "
            "epoll and io_uring rows must agree on every protocol column. "
            "The wide-slot row pays for 32-bit slot ids in ENC packet "
            "capacity (45 vs 46 entries at 1027 bytes), not frame size. "
            "Throughput and syscall columns are wall-clock and "
            "machine-dependent.");
  return json.write();
}
