// KS1 — key-server batch-rekey throughput on the flat arena key tree.
//
// For each group size N and J/L mix, a fresh tree of N users is built and
// one batch is driven through the full server pipeline — marking,
// encryption generation, UKA packet assignment — with each stage timed
// separately. The encryption counts are deterministic (fixed per-point
// seeds) and are cross-checked against the A1 analytic model
// (analysis/batch_cost.h); timings are hardware-dependent, so the CI
// golden diff gives the timing columns an unbounded tolerance
// (tools/bench_diff.py --col-rtol) while holding counts exact.
//
// The second section re-runs encryption generation with the worker pool
// (REKEY_THREADS / hardware concurrency): the fan-out writes to fixed
// output slots, so its payload is bit-identical to the serial one — the
// bench asserts that — and only the wall time changes.
// The third section sweeps the shard count (keytree/shard.h): the whole
// batch pipeline — sharded marking, per-shard payload generation, and the
// two-phase parallel UKA — runs at 1..8 shards on a fixed worker pool,
// with a serial-pipeline baseline row (shards=0). The sharded output is
// asserted bit-identical to the serial baseline at every shard count;
// only the wall time may move.
#include <chrono>
#include <iostream>

#include "analysis/batch_cost.h"
#include "common/ensure.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "keytree/marking.h"
#include "keytree/rekey_subtree.h"
#include "keytree/shard.h"
#include "keytree/shard_pipeline.h"
#include "packet/assign.h"
#include "sweep.h"

namespace {

using namespace rekey;
using Clock = std::chrono::steady_clock;

double us_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(Clock::now() - t0)
      .count();
}

struct Mix {
  const char* name;
  std::size_t J, L;  // per unit N: J = N/j_div etc. (0 divisor = zero)
};

struct PointResult {
  std::size_t encryptions = 0;
  std::size_t enc_packets = 0;
  double mark_us = 0.0;
  double payload_us = 0.0;
  double assign_us = 0.0;
  double payload_parallel_us = 0.0;
  bool parallel_identical = true;
};

// Builds a fresh N-user tree, applies one (J, L) batch, and times each
// pipeline stage. `pool` (may be null) is used only for the extra
// parallel payload-generation measurement.
PointResult run_point(std::size_t N, std::size_t J, std::size_t L,
                      unsigned d, std::uint64_t seed, int trials,
                      ThreadPool* pool) {
  PointResult r;
  r.mark_us = r.payload_us = r.assign_us = r.payload_parallel_us = 1e300;
  for (int t = 0; t < trials; ++t) {
    Rng rng(bench::point_seed(seed, static_cast<std::uint64_t>(t)));
    tree::KeyTree kt(d, rng.next_u64());
    kt.populate(N);
    std::vector<tree::MemberId> leaves;
    leaves.reserve(L);
    for (const auto pick : rng.sample_without_replacement(N, L))
      leaves.push_back(static_cast<tree::MemberId>(pick));
    std::vector<tree::MemberId> joins;
    joins.reserve(J);
    for (std::size_t j = 0; j < J; ++j)
      joins.push_back(static_cast<tree::MemberId>(N + j));

    auto t0 = Clock::now();
    tree::Marker marker(kt);
    const auto upd = marker.run(joins, leaves);
    r.mark_us = std::min(r.mark_us, us_since(t0));

    t0 = Clock::now();
    const auto payload = tree::generate_rekey_payload(kt, upd, 1);
    r.payload_us = std::min(r.payload_us, us_since(t0));

    t0 = Clock::now();
    const auto assignment = packet::assign_keys(payload, 1027);
    r.assign_us = std::min(r.assign_us, us_since(t0));

    r.encryptions = payload.encryptions.size();
    r.enc_packets = assignment.packets.size();

    if (pool != nullptr) {
      t0 = Clock::now();
      const auto par = tree::generate_rekey_payload(kt, upd, 1, pool);
      r.payload_parallel_us = std::min(r.payload_parallel_us, us_since(t0));
      r.parallel_identical =
          r.parallel_identical &&
          par.encryptions.size() == payload.encryptions.size();
      for (std::size_t i = 0;
           r.parallel_identical && i < par.encryptions.size(); ++i)
        r.parallel_identical =
            par.encryptions[i].enc_id == payload.encryptions[i].enc_id &&
            par.encryptions[i].payload == payload.encryptions[i].payload;
    }
  }
  return r;
}

// One shard-axis configuration: shards == 0 is the serial pipeline
// baseline, shards >= 1 the sharded pipeline at that shard count.
struct ShardPoint {
  std::size_t encryptions = 0;
  std::size_t enc_packets = 0;
  double mark_us = 0.0;
  double payload_us = 0.0;
  double assign_us = 0.0;
  bool identical = true;  // artifacts match the serial baseline
};

// Serial-baseline artifacts the sharded runs are compared against
// (trial 0 only: trials differ only in seed, and one exact comparison
// per configuration is the determinism gate, not a statistics game).
struct ShardBaseline {
  std::vector<tree::Encryption> encryptions;
  std::vector<rekey::Bytes> packet_wires;
};

ShardPoint run_shard_point(std::size_t N, std::size_t J, std::size_t L,
                           unsigned d, unsigned shards, std::uint64_t seed,
                           int trials, ThreadPool* pool,
                           ShardBaseline* baseline) {
  ShardPoint r;
  r.mark_us = r.payload_us = r.assign_us = 1e300;
  for (int t = 0; t < trials; ++t) {
    // Identical tree/batch construction across shard counts: the rng
    // stream below depends only on (seed, t).
    Rng rng(bench::point_seed(seed, static_cast<std::uint64_t>(t)));
    tree::KeyTree kt(d, rng.next_u64());
    kt.populate(N);
    std::vector<tree::MemberId> leaves;
    leaves.reserve(L);
    for (const auto pick : rng.sample_without_replacement(N, L))
      leaves.push_back(static_cast<tree::MemberId>(pick));
    std::vector<tree::MemberId> joins;
    joins.reserve(J);
    for (std::size_t j = 0; j < J; ++j)
      joins.push_back(static_cast<tree::MemberId>(N + j));

    tree::Marker marker(kt);
    tree::RekeyPayload payload;
    packet::Assignment assignment;
    if (shards == 0) {
      auto t0 = Clock::now();
      const auto upd = marker.run(joins, leaves);
      r.mark_us = std::min(r.mark_us, us_since(t0));
      t0 = Clock::now();
      tree::generate_rekey_payload_into(kt, upd, 1, payload);
      r.payload_us = std::min(r.payload_us, us_since(t0));
      t0 = Clock::now();
      assignment = packet::assign_keys(payload, 1027);
      r.assign_us = std::min(r.assign_us, us_since(t0));
    } else {
      const tree::ShardPlan plan = tree::ShardPlan::make(d, shards);
      TaskRunner runner(pool);
      auto t0 = Clock::now();
      const auto upd = marker.run_sharded(joins, leaves, plan, runner);
      r.mark_us = std::min(r.mark_us, us_since(t0));
      t0 = Clock::now();
      tree::generate_rekey_payload_sharded(kt, upd, 1, payload, plan,
                                           runner);
      r.payload_us = std::min(r.payload_us, us_since(t0));
      t0 = Clock::now();
      assignment = packet::assign_keys(payload, 1027, plan, runner);
      r.assign_us = std::min(r.assign_us, us_since(t0));
    }
    r.encryptions = payload.encryptions.size();
    r.enc_packets = assignment.packets.size();

    if (t == 0 && baseline != nullptr) {
      if (shards == 0) {
        baseline->encryptions = payload.encryptions;
        baseline->packet_wires.clear();
        for (const auto& pkt : assignment.packets)
          baseline->packet_wires.push_back(pkt.serialize(1027));
      } else {
        r.identical =
            payload.encryptions.size() == baseline->encryptions.size() &&
            assignment.packets.size() == baseline->packet_wires.size();
        for (std::size_t i = 0;
             r.identical && i < payload.encryptions.size(); ++i)
          r.identical =
              payload.encryptions[i].enc_id ==
                  baseline->encryptions[i].enc_id &&
              payload.encryptions[i].payload ==
                  baseline->encryptions[i].payload;
        for (std::size_t p = 0;
             r.identical && p < assignment.packets.size(); ++p)
          r.identical = assignment.packets[p].serialize(1027) ==
                        baseline->packet_wires[p];
      }
    }
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rekey::bench;
  BenchCli cli = parse_bench_cli(argc, argv);
  FigureJson json("KS1", cli);

  const unsigned d = 4;
  const int kTrials = cli.smoke ? 1 : 3;
  const std::vector<std::size_t> sizes =
      cli.smoke ? std::vector<std::size_t>{1u << 10, 1u << 12}
                : std::vector<std::size_t>{1u << 10, 1u << 12, 1u << 14,
                                           1u << 17, 1u << 20};
  ThreadPool pool(0);
  ThreadPool* par = pool.size() > 1 ? &pool : nullptr;

  struct Row {
    std::size_t N, J, L;
    const char* mix;
    PointResult res;
  };
  std::vector<Row> rows;
  std::uint64_t idx = 0;
  bool all_identical = true;
  for (const std::size_t N : sizes) {
    const Mix mixes[] = {{"churn", N / 16, N / 16},
                         {"leave", 0, N / 4},
                         {"join", N / 4, 0}};
    for (const Mix& m : mixes) {
      const std::uint64_t seed = point_seed(0x4B5311ull, idx);
      json.add_seed(seed);
      Row row{N, m.J, m.L, m.name,
              run_point(N, m.J, m.L, d, seed, kTrials, par)};
      all_identical = all_identical && row.res.parallel_identical;
      rows.push_back(row);
      ++idx;
    }
  }

  json.header(std::cout, "KS1 (pipeline)",
              "server batch cost: marking + payload + UKA, per stage",
              "d=4, 1027-byte packets, fresh tree per point, min over " +
                  std::to_string(kTrials) + " trials");
  {
    Table t({"N", "mix", "J", "L", "enc", "model_enc", "enc_pkts",
             "mark_us", "payload_us", "assign_us", "batch_us",
             "us_per_user", "batches_per_s"});
    t.set_precision(2);
    for (const Row& r : rows) {
      const double batch_us =
          r.res.mark_us + r.res.payload_us + r.res.assign_us;
      t.add_row({static_cast<long long>(r.N), std::string(r.mix),
                 static_cast<long long>(r.J), static_cast<long long>(r.L),
                 static_cast<long long>(r.res.encryptions),
                 analysis::expected_encryptions(r.N, r.J, r.L, d),
                 static_cast<long long>(r.res.enc_packets), r.res.mark_us,
                 r.res.payload_us, r.res.assign_us, batch_us,
                 batch_us / static_cast<double>(r.N), 1e6 / batch_us});
    }
    json.table(std::cout, t);
  }

  // The params string stays machine-independent (the worker count varies
  // with REKEY_THREADS) so the smoke document golden-diffs cleanly.
  json.header(std::cout, "KS1 (parallel payload)",
              "encryption generation: serial vs worker pool",
              "REKEY_THREADS workers; 1 worker repeats the serial column");
  {
    Table t({"N", "mix", "enc", "payload_us", "payload_par_us", "speedup"});
    t.set_precision(2);
    for (const Row& r : rows) {
      const double par_us = par == nullptr || r.res.payload_parallel_us > 1e299
                                ? r.res.payload_us
                                : r.res.payload_parallel_us;
      t.add_row({static_cast<long long>(r.N), std::string(r.mix),
                 static_cast<long long>(r.res.encryptions), r.res.payload_us,
                 par_us, r.res.payload_us / par_us});
    }
    json.table(std::cout, t);
  }
  // Shard-count axis: the full sharded pipeline at a fixed worker pool.
  // Shard count doubles as the pipeline's concurrency knob (chunk counts
  // derive from it), so this is the marking+assignment scaling figure.
  const std::vector<std::size_t> shard_sizes =
      cli.smoke ? std::vector<std::size_t>{1u << 12}
                : std::vector<std::size_t>{1u << 20, 1u << 22};
  const int kShardTrials = cli.smoke ? 1 : 2;
  json.header(std::cout, "KS1 (shard scaling)",
              "sharded batch pipeline vs shard count; shards=0 is the "
              "serial pipeline baseline",
              "d=4, churn J=L=N/16, 1027-byte packets, fixed worker pool");
  {
    Table t({"N", "shards", "enc", "model_enc", "enc_pkts", "mark_us",
             "payload_us", "assign_us", "mark_assign_us", "speedup"});
    t.set_precision(2);
    for (const std::size_t N : shard_sizes) {
      const std::size_t J = N / 16, L = N / 16;
      const std::uint64_t seed = point_seed(0x4B5311ull, 1000 + idx);
      json.add_seed(seed);
      ++idx;
      ShardBaseline baseline;
      double one_shard_ma = 0.0;
      for (const unsigned shards : {0u, 1u, 2u, 4u, 8u}) {
        const ShardPoint r = run_shard_point(N, J, L, d, shards, seed,
                                             kShardTrials, par, &baseline);
        all_identical = all_identical && r.identical;
        const double ma = r.mark_us + r.assign_us;
        if (shards == 1) one_shard_ma = ma;
        t.add_row({static_cast<long long>(N),
                   static_cast<long long>(shards),
                   static_cast<long long>(r.encryptions),
                   analysis::expected_encryptions(N, J, L, d),
                   static_cast<long long>(r.enc_packets), r.mark_us,
                   r.payload_us, r.assign_us, ma,
                   shards == 0 || one_shard_ma == 0.0 ? 1.0
                                                      : one_shard_ma / ma});
      }
    }
    json.table(std::cout, t);
  }
  // Worker-pinning axis: the same sharded pipeline, once with free-running
  // workers and once with each worker pinned to its own CPU
  // (common/parallel.h, REKEY_PIN) — the "NUMA pinning" headroom noted in
  // the roadmap. The artifacts must stay bit-identical to the serial
  // baseline either way; only the timing columns may move, and on a
  // single-CPU host they barely do.
  json.header(std::cout, "KS1 (pinning)",
              "sharded pipeline with unpinned vs CPU-pinned workers",
              "d=4, churn J=L=N/16, 1027-byte packets; worker and timing "
              "columns are hardware-dependent");
  {
    Table t({"N", "shards", "config", "workers", "pinned_workers", "enc",
             "mark_us", "payload_us", "assign_us", "mark_assign_us"});
    t.set_precision(2);
    const std::size_t N = shard_sizes.front();
    const std::size_t J = N / 16, L = N / 16;
    const std::uint64_t seed = point_seed(0x4B5311ull, 2000);
    json.add_seed(seed);
    ShardBaseline baseline;
    run_shard_point(N, J, L, d, 0, seed, kShardTrials, nullptr, &baseline);
    for (const int pin : {0, 1}) {
      ThreadPool pin_pool(pool.size(), pin);
      ThreadPool* pin_par = pin_pool.size() > 1 ? &pin_pool : nullptr;
      const ShardPoint r = run_shard_point(N, J, L, d, 4, seed,
                                           kShardTrials, pin_par, &baseline);
      all_identical = all_identical && r.identical;
      t.add_row({static_cast<long long>(N), 4ll,
                 std::string(pin == 0 ? "unpinned" : "pinned"),
                 static_cast<long long>(pin_pool.size()),
                 static_cast<long long>(pin_pool.pinned_workers()),
                 static_cast<long long>(r.encryptions), r.mark_us,
                 r.payload_us, r.assign_us, r.mark_us + r.assign_us});
    }
    json.table(std::cout, t);
  }
  REKEY_ENSURE_MSG(all_identical,
                   "parallel or sharded pipeline diverged from the serial "
                   "baseline");
  json.note(std::cout,
            "Counts are deterministic and match the A1 model; timing "
            "columns are hardware-dependent (CI diffs them with unbounded "
            "tolerance). Parallel payloads and the sharded pipeline at "
            "every shard count are bit-identical to serial, with or "
            "without worker CPU pinning.");
  return json.write();
}
