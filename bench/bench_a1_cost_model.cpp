// A1 — the SIGCOMM paper's batch-rekeying cost analysis: analytic expected
// encryption counts versus Monte-Carlo runs of the real marking algorithm,
// across group sizes and J/L mixes.
//
// Cases are independent Monte-Carlo estimates with per-case seeds, so
// they fan out across the worker pool; results are identical for any
// REKEY_THREADS setting.
#include <iostream>

#include "analysis/batch_cost.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "keytree/marking.h"
#include "keytree/rekey_subtree.h"
#include "sweep.h"

using namespace rekey;

namespace {

double monte_carlo(std::size_t N, std::size_t J, std::size_t L, unsigned d,
                   int trials) {
  RunningStats s;
  for (int t = 0; t < trials; ++t) {
    Rng rng(static_cast<std::uint64_t>(N + J * 3 + L * 7 + t * 7919));
    tree::KeyTree kt(d, rng.next_u64());
    kt.populate(N);
    std::vector<tree::MemberId> leaves;
    for (const auto pick : rng.sample_without_replacement(N, L))
      leaves.push_back(static_cast<tree::MemberId>(pick));
    std::vector<tree::MemberId> joins;
    for (std::size_t j = 0; j < J; ++j)
      joins.push_back(static_cast<tree::MemberId>(N + j));
    tree::Marker m(kt);
    const auto upd = m.run(joins, leaves);
    s.add(static_cast<double>(
        tree::generate_rekey_payload(kt, upd, 1).encryptions.size()));
  }
  return s.mean();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rekey::bench;
  const BenchCli cli = parse_bench_cli(argc, argv);
  FigureJson json("A1", cli);

  const int kTrials = cli.smoke ? 1 : 5;
  json.header(
      std::cout, "A1",
      "E[#encryptions]: hypergeometric model vs marking algorithm",
      "d=4, 5 Monte-Carlo trials per point; J<=L exact, J>L fill/split "
      "model");

  Table t({"N", "J", "L", "model", "simulated", "ratio"});
  t.set_precision(3);
  struct Case {
    std::size_t N, J, L;
  };
  const std::vector<Case> cases =
      cli.smoke ? std::vector<Case>{{1024, 0, 256}, {1024, 256, 256},
                                    {4096, 0, 1024}}
                : std::vector<Case>{
                      {1024, 0, 64},     {1024, 0, 256},    {1024, 0, 512},
                      {1024, 256, 256},  {1024, 64, 256},   {4096, 0, 1024},
                      {4096, 1024, 1024}, {4096, 256, 1024}, {4096, 1024, 0},
                      {16384, 0, 4096},  {16384, 4096, 4096},
                  };
  std::vector<double> sims(cases.size());
  parallel_for_each_index(cases.size(), [&](std::size_t i) {
    sims[i] = monte_carlo(cases[i].N, cases[i].J, cases[i].L, 4, kTrials);
  });
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const auto& c = cases[i];
    const double model = analysis::expected_encryptions(c.N, c.J, c.L, 4);
    const double sim = sims[i];
    t.add_row({static_cast<long long>(c.N), static_cast<long long>(c.J),
               static_cast<long long>(c.L), model, sim,
               sim > 0 ? model / sim : 0.0});
  }
  json.table(std::cout, t);

  json.header(std::cout, "A1 (headline)",
              "expected ENC packets at the paper's headline point",
              "N=4096, J=0, L=N/4, d=4, 46 encryptions/packet; paper "
              "reports up to 107");
  Table headline({"model E[ENC packets]"});
  headline.set_precision(3);
  headline.add_row({analysis::expected_enc_packets(4096, 0, 1024, 4, 46)});
  json.table(std::cout, headline);

  json.note(std::cout,
            "Shape check: ratio ~1.00 +/- 0.05 for J <= L; within ~25% "
            "for the deterministic J > L model.");
  return json.write();
}
