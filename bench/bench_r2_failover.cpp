// R2 — replicated key server: failover latency vs blackout onset phase.
//
// Runs a primary/standby rekeyd pair and a set of client fleets in one
// process, each on its own UDP loopback socket. The primary ships a
// sealed full-server snapshot to the standby before every batch and
// heartbeats between lockstep steps; a FaultPlan blackout window kills
// the primary at a chosen protocol-clock step (deterministic: the clock
// advances round_quantum_ms per lockstep step, never wall time). The
// standby elects itself after elect_timeout_ms of silence, bumps the
// fencing epoch, re-syncs the fleet via Resub, and replays the
// interrupted batch.
//
// Scenarios vary *where inside a batch* the blackout lands: never
// (replicated baseline), at the batch boundary (before BatchStart), after
// BatchStart but before the data burst, and after the multicast rounds
// but before BatchDone. Protocol counters — batches run on each side,
// died_at_ms, epoch, resubs, recoveries — are exact and golden-diffable;
// wall-clock columns (wall_ms, and the failover latency floor elect_ms)
// are hardware/config-dependent and diffed with unbounded tolerance in
// CI.
#include <algorithm>
#include <chrono>
#include <iostream>
#include <thread>
#include <vector>

#include "common/ensure.h"
#include "sweep.h"
#include "wire/daemon.h"
#include "wire/fleet.h"
#include "wire/udp.h"

namespace {

using namespace rekey;
using Clock = std::chrono::steady_clock;

constexpr std::uint32_t kLoopback = 0x7F000001;  // 127.0.0.1

// Zero-loss lockstep: each batch costs exactly three protocol-clock steps
// (batch boundary, the single multicast round's burst, pre-BatchDone), so
// with quantum q the death points of batch b sit at 3qb + q, 3qb + 2q,
// 3qb + 3q. Narrow windows pin one exact step.
constexpr double kQuantum = 100.0;

struct Scenario {
  const char* name;
  // Blackout window for the primary; {0, 0} = no blackout.
  double onset_ms;
  double end_ms;
};

struct FailoverRun {
  wire::DaemonStats primary;
  wire::DaemonStats standby;
  wire::FleetStats fleet;  // aggregated over all fleets
  double wall_ms = 0.0;
};

struct RunParams {
  std::uint32_t clients;
  unsigned endpoints;
  std::uint32_t batches;
  std::uint32_t churn;
  int elect_timeout_ms;
};

FailoverRun run_scenario(const Scenario& sc, const RunParams& p) {
  wire::DaemonConfig dc;
  dc.clients = p.clients;
  dc.churn_pool = std::max<std::uint32_t>(64, 2 * p.churn);
  dc.batches = p.batches;
  dc.churn_joins = p.churn;
  dc.churn_leaves = p.churn;
  dc.max_multicast_rounds = 8;
  dc.round_wait_ms = 20000;
  dc.retry_ms = 20;
  dc.elect_timeout_ms = p.elect_timeout_ms;
  dc.round_quantum_ms = kQuantum;

  wire::UdpWire primary_udp(kLoopback, 0);
  wire::UdpWire standby_udp(kLoopback, 0);
  const wire::Endpoint primary_ep = primary_udp.local_endpoint();
  const wire::Endpoint standby_ep = standby_udp.local_endpoint();

  wire::DaemonConfig pc = dc;
  pc.peer = standby_ep;
  if (sc.end_ms > sc.onset_ms)
    pc.fault.blackouts.push_back({sc.onset_ms, sc.end_ms});

  wire::DaemonConfig stc = dc;
  stc.peer = primary_ep;
  stc.standby = true;

  wire::KeyServerDaemon primary(primary_udp, pc);
  wire::KeyServerDaemon standby(standby_udp, stc);

  const auto t0 = Clock::now();
  FailoverRun r;
  std::thread primary_thread([&] { r.primary = primary.run(); });
  std::thread standby_thread([&] { r.standby = standby.run(); });

  std::vector<wire::FleetStats> fss(p.endpoints);
  std::vector<std::thread> fleets;
  const std::uint32_t base = p.clients / p.endpoints;
  const std::uint32_t extra = p.clients % p.endpoints;
  std::uint32_t uid = 0;
  for (unsigned t = 0; t < p.endpoints; ++t) {
    const std::uint32_t count = base + (t < extra ? 1 : 0);
    fleets.emplace_back([&, t, uid, count] {
      wire::UdpWire udp(kLoopback, 0);
      wire::FleetConfig fc;
      fc.first_uid = uid;
      fc.count = count;
      fc.failover.push_back(standby_ep);
      wire::ClientFleet fleet(udp, primary_ep, fc);
      fss[t] = fleet.run();
    });
    uid += count;
  }
  for (auto& f : fleets) f.join();
  primary_thread.join();
  standby_thread.join();

  r.wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  r.fleet.finished = !fss.empty();
  for (const wire::FleetStats& fs : fss) {
    r.fleet.clients += fs.clients;
    r.fleet.batches = std::max(r.fleet.batches, fs.batches);
    r.fleet.recovered += fs.recovered;
    r.fleet.via_usr += fs.via_usr;
    r.fleet.unrecovered += fs.unrecovered;
    r.fleet.epoch = std::max(r.fleet.epoch, fs.epoch);
    r.fleet.failovers += fs.failovers;
    r.fleet.resubs_sent += fs.resubs_sent;
    r.fleet.finished = r.fleet.finished && fs.finished;
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rekey::bench;
  BenchCli cli = parse_bench_cli(argc, argv);
  FigureJson json("R2", cli);

  RunParams p;
  p.clients = cli.smoke ? 256 : (1u << 15);
  p.endpoints = cli.smoke ? 2 : 8;
  p.batches = 3;
  p.churn = cli.smoke ? 64 : 256;
  p.elect_timeout_ms = 250;

  // Batch 1's three death points under kQuantum=100: boundary at 400,
  // pre-burst at 500, pre-BatchDone at 600 (batch 0 consumed 100..300).
  const Scenario scenarios[] = {
      {"replicated", 0.0, 0.0},
      {"boundary", 395.0, 405.0},
      {"mid-round", 495.0, 505.0},
      {"pre-done", 595.0, 605.0},
  };
  std::vector<FailoverRun> runs;
  for (const Scenario& sc : scenarios) runs.push_back(run_scenario(sc, p));

  json.header(std::cout, "R2 (failover)",
              "primary/standby handoff vs blackout onset phase within a "
              "batch",
              "N=" + std::to_string(p.clients) + ", batches=3, d=4, UDP "
              "loopback, quantum=100ms, elect=250ms, " +
                  std::to_string(p.endpoints) + " endpoints");
  {
    Table t({"scenario", "onset_ms", "died_at_ms", "p_batches", "s_batches",
             "promoted", "epoch", "snaps", "resubs", "recovered",
             "unrecovered", "failovers"});
    t.set_precision(3);
    for (std::size_t i = 0; i < runs.size(); ++i) {
      const FailoverRun& r = runs[i];
      t.add_row({std::string(scenarios[i].name), scenarios[i].onset_ms,
                 r.primary.died_at_ms,
                 static_cast<long long>(r.primary.batches_run),
                 static_cast<long long>(r.standby.batches_run),
                 static_cast<long long>(r.standby.promoted ? 1 : 0),
                 static_cast<long long>(r.fleet.epoch),
                 static_cast<long long>(r.primary.snapshots_sent),
                 static_cast<long long>(r.standby.resubs),
                 static_cast<long long>(r.fleet.recovered),
                 static_cast<long long>(r.fleet.unrecovered),
                 static_cast<long long>(r.fleet.failovers)});
    }
    json.table(std::cout, t);
  }

  json.header(std::cout, "R2 (latency)",
              "wall-clock handoff cost per scenario",
              "timing columns are hardware-dependent (CI tolerance "
              "unbounded)");
  {
    Table t({"scenario", "elect_ms", "wall_ms"});
    t.set_precision(3);
    for (std::size_t i = 0; i < runs.size(); ++i)
      t.add_row({std::string(scenarios[i].name),
                 static_cast<double>(p.elect_timeout_ms), runs[i].wall_ms});
    json.table(std::cout, t);
  }

  // Contract: every client finishes every scenario; every blackout
  // scenario promotes the standby to epoch 1 and replays to completion.
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const FailoverRun& r = runs[i];
    const bool blackout = scenarios[i].end_ms > scenarios[i].onset_ms;
    REKEY_ENSURE_MSG(r.fleet.finished && r.fleet.unrecovered == 0,
                     "a failover scenario left clients unrecovered");
    REKEY_ENSURE_MSG(blackout == r.primary.died,
                     "primary death did not match the blackout schedule");
    REKEY_ENSURE_MSG(blackout == (r.standby.promoted && r.fleet.epoch == 1),
                     "standby promotion did not match the blackout schedule");
    REKEY_ENSURE_MSG(r.primary.batches_run + r.standby.batches_run >=
                         p.batches,
                     "primary + standby ran fewer batches than configured");
  }
  json.note(std::cout,
            "Counters are deterministic: the primary's death is a pure "
            "function of (fault plan, protocol clock), and the standby's "
            "replay of the interrupted batch is bit-identical to what the "
            "primary would have run. Recoveries are counted at BatchDone "
            "finalization, so the replayed batch counts once even in the "
            "pre-done row where clients held its keys under both epochs — "
            "recovered is exactly N x batches in every scenario. elect_ms "
            "is the latency floor the standby waits before electing "
            "itself.");
  return json.write();
}
