// F7 — "Average duplication overhead" of the UKA assignment (protocol
// paper Fig 7 left/right).
//
// Left:  duplication overhead over a (J, L) grid at N=4096.
// Right: duplication overhead vs N for the three J/L mixes; the paper
// notes ~linear growth in log N and an empirical bound (log_d N - 1)/46.
//
// Cells are independent Monte-Carlo estimates with per-cell seeds, so they
// fan out across the worker pool; results are identical for any
// REKEY_THREADS setting.
#include <iostream>

#include "analysis/batch_cost.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "keytree/marking.h"
#include "packet/assign.h"
#include "sweep.h"

namespace {

using namespace rekey;

struct Cell {
  std::size_t N, J, L;
};

double avg_duplication(std::size_t N, std::size_t J, std::size_t L,
                       unsigned d, int trials) {
  RunningStats s;
  for (int t = 0; t < trials; ++t) {
    Rng rng(static_cast<std::uint64_t>(N * 13 + J * 5 + L * 11 + t));
    tree::KeyTree kt(d, rng.next_u64());
    kt.populate(N);
    std::vector<tree::MemberId> leaves;
    for (const auto pick : rng.sample_without_replacement(N, L))
      leaves.push_back(static_cast<tree::MemberId>(pick));
    std::vector<tree::MemberId> joins;
    for (std::size_t j = 0; j < J; ++j)
      joins.push_back(static_cast<tree::MemberId>(N + j));
    tree::Marker m(kt);
    const auto upd = m.run(joins, leaves);
    const auto payload = tree::generate_rekey_payload(kt, upd, 1);
    const auto assignment = packet::assign_keys(payload, 1027);
    s.add(assignment.duplication_overhead());
  }
  return s.mean();
}

std::vector<double> run_cells(const std::vector<Cell>& cells, int trials) {
  std::vector<double> out(cells.size());
  parallel_for_each_index(cells.size(), [&](std::size_t i) {
    out[i] = avg_duplication(cells[i].N, cells[i].J, cells[i].L, 4, trials);
  });
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rekey::bench;
  const BenchCli cli = parse_bench_cli(argc, argv);
  FigureJson json("F7", cli);

  const int kTrials = cli.smoke ? 1 : 3;
  const std::size_t kGridN = cli.smoke ? 512 : 4096;
  const std::vector<std::size_t> grid =
      cli.smoke ? std::vector<std::size_t>{0, 256, 512}
                : std::vector<std::size_t>{0, 512, 1024, 2048, 3072, 4096};
  const std::vector<std::size_t> sizes =
      cli.smoke ? std::vector<std::size_t>{32, 1024}
                : std::vector<std::size_t>{32, 128, 1024, 4096, 16384};

  std::vector<Cell> cells;
  for (const std::size_t J : grid)
    for (const std::size_t L : grid) cells.push_back({kGridN, J, L});
  const std::size_t left_cells = cells.size();
  for (const std::size_t N : sizes) {
    cells.push_back({N, 0, N / 4});
    cells.push_back({N, N / 4, N / 4});
    cells.push_back({N, N / 4, 0});
  }
  const std::vector<double> results = run_cells(cells, kTrials);

  json.header(std::cout, "F7 (left)",
              "average duplication overhead vs (J, L)",
              "N=" + std::to_string(kGridN) +
                  ", d=4, 46 encryptions/packet, " + std::to_string(kTrials) +
                  " trials/cell");
  {
    std::vector<std::string> headers{"J \\ L"};
    for (const std::size_t L : grid)
      headers.push_back("L=" + std::to_string(L));
    Table t(headers);
    t.set_precision(4);
    std::size_t cell = 0;
    for (const std::size_t J : grid) {
      std::vector<Table::Cell> row{std::string("J=") + std::to_string(J)};
      for (std::size_t l = 0; l < grid.size(); ++l)
        row.push_back(results[cell++]);
      t.add_row(row);
    }
    json.table(std::cout, t);
  }

  json.header(std::cout, "F7 (right)",
              "average duplication overhead vs group size",
              "d=4; paper bound (log_d N - 1)/46 printed alongside");
  {
    Table t({"N", "J=0,L=N/4", "J=N/4,L=N/4", "J=N/4,L=0",
             "paper bound"});
    t.set_precision(4);
    std::size_t cell = left_cells;
    for (const std::size_t N : sizes) {
      t.add_row({static_cast<long long>(N), results[cell], results[cell + 1],
                 results[cell + 2],
                 analysis::duplication_overhead_bound(N, 4, 46)});
      cell += 3;
    }
    json.table(std::cout, t);
  }
  json.note(std::cout,
            "Shape check: overhead grows ~linearly in log N and stays "
            "below the (log_d N - 1)/46 bound for the dense mixes.");
  return json.write();
}
