// F6 — "Average number of ENC packets" (protocol paper Fig 6 middle/right).
//
// Middle: avg #ENC packets over a (J, L) grid at N=4096, d=4.
// Right:  avg #ENC packets vs N for J=0,L=N/4; J=L=N/4; J=N/4,L=0.
//
// Expected shape (paper): linear growth in J at fixed L; rise-then-fall in
// L at fixed J (pruning wins past L ~ N/d); linear growth in N for all
// three J/L mixes.
//
// Cells are independent Monte-Carlo estimates with per-cell seeds, so they
// fan out across the worker pool; results are identical for any
// REKEY_THREADS setting.
#include <iostream>

#include "common/parallel.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "keytree/marking.h"
#include "packet/assign.h"
#include "sweep.h"

namespace {

using namespace rekey;

struct Cell {
  std::size_t N, J, L;
};

double avg_enc_packets(std::size_t N, std::size_t J, std::size_t L,
                       unsigned d, int trials) {
  RunningStats s;
  for (int t = 0; t < trials; ++t) {
    Rng rng(static_cast<std::uint64_t>(N * 31 + J * 7 + L * 3 + t));
    tree::KeyTree kt(d, rng.next_u64());
    kt.populate(N);
    std::vector<tree::MemberId> leaves;
    for (const auto pick : rng.sample_without_replacement(N, L))
      leaves.push_back(static_cast<tree::MemberId>(pick));
    std::vector<tree::MemberId> joins;
    for (std::size_t j = 0; j < J; ++j)
      joins.push_back(static_cast<tree::MemberId>(N + j));
    tree::Marker m(kt);
    const auto upd = m.run(joins, leaves);
    const auto payload = tree::generate_rekey_payload(kt, upd, 1);
    const auto assignment = packet::assign_keys(payload, 1027);
    s.add(static_cast<double>(assignment.packets.size()));
  }
  return s.mean();
}

std::vector<double> run_cells(const std::vector<Cell>& cells, int trials) {
  std::vector<double> out(cells.size());
  parallel_for_each_index(cells.size(), [&](std::size_t i) {
    out[i] = avg_enc_packets(cells[i].N, cells[i].J, cells[i].L, 4, trials);
  });
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rekey::bench;
  const BenchCli cli = parse_bench_cli(argc, argv);
  FigureJson json("F6", cli);

  const int kTrials = cli.smoke ? 1 : 3;
  const std::size_t kGridN = cli.smoke ? 512 : 4096;
  const std::vector<std::size_t> grid =
      cli.smoke ? std::vector<std::size_t>{0, 256, 512}
                : std::vector<std::size_t>{0, 512, 1024, 2048, 3072, 4096};
  const std::vector<std::size_t> sizes =
      cli.smoke ? std::vector<std::size_t>{256, 1024}
                : std::vector<std::size_t>{1024, 2048, 4096, 8192, 16384};

  std::vector<Cell> cells;
  for (const std::size_t J : grid)
    for (const std::size_t L : grid) cells.push_back({kGridN, J, L});
  const std::size_t middle_cells = cells.size();
  for (const std::size_t N : sizes) {
    cells.push_back({N, 0, N / 4});
    cells.push_back({N, N / 4, N / 4});
    cells.push_back({N, N / 4, 0});
  }
  const std::vector<double> results = run_cells(cells, kTrials);

  json.header(std::cout, "F6 (middle)",
              "average #ENC packets vs (J, L)",
              "N=" + std::to_string(kGridN) + ", d=4, 1027-byte packets, " +
                  std::to_string(kTrials) + " trials/cell");
  {
    std::vector<std::string> headers{"J \\ L"};
    for (const std::size_t L : grid)
      headers.push_back("L=" + std::to_string(L));
    Table t(headers);
    t.set_precision(1);
    std::size_t cell = 0;
    for (const std::size_t J : grid) {
      std::vector<Table::Cell> row{std::string("J=") + std::to_string(J)};
      for (std::size_t l = 0; l < grid.size(); ++l)
        row.push_back(results[cell++]);
      t.add_row(row);
    }
    json.table(std::cout, t);
  }

  json.header(std::cout, "F6 (right)",
              "average #ENC packets vs group size",
              "d=4, 1027-byte packets, " + std::to_string(kTrials) +
                  " trials/point");
  {
    Table t({"N", "J=0,L=N/4", "J=N/4,L=N/4", "J=N/4,L=0"});
    t.set_precision(1);
    std::size_t cell = middle_cells;
    for (const std::size_t N : sizes) {
      t.add_row({static_cast<long long>(N), results[cell], results[cell + 1],
                 results[cell + 2]});
      cell += 3;
    }
    json.table(std::cout, t);
  }
  json.note(std::cout,
            "Shape check: growth ~linear in J and in N; L-curves rise "
            "then fall past L ~ N/d.");
  return json.write();
}
