// AB5 (ablation) — when to switch to unicast (paper §7.1). Compares
// multicast-only, switch-after-1-round, switch-after-2-rounds, and the
// size-based early switch: worst-case delivery latency (rounds + unicast
// waves folded into duration) versus server bandwidth.
//
// Bandwidth uses total_bandwidth_overhead(), which counts the USR unicast
// bytes — without them, early-unicast policies look cheaper than they are.
#include <iostream>

#include "common/table.h"
#include "sweep.h"

using namespace rekey;
using namespace rekey::bench;

namespace {

struct Policy {
  const char* name;
  int max_rounds;
  bool by_size;
};

}  // namespace

int main(int argc, char** argv) {
  const BenchCli cli = parse_bench_cli(argc, argv);
  FigureJson json("AB5", cli);

  constexpr std::uint64_t kBaseSeed = 0xAB5;
  json.header(
      std::cout, "AB5",
      "unicast switch policy: latency vs bandwidth trade-off",
      "N=4096, L=N/4, k=10, adaptive rho (numNACK=20), alpha=20%, "
      "8 messages/policy");

  const Policy policies[] = {
      {"multicast only", 0, false},
      {"unicast after 1 round", 1, false},
      {"unicast after 2 rounds", 2, false},
      {"size-based early switch", 0, true},
  };

  // All policies share one seed so they face the same loss realization.
  const std::uint64_t seed = point_seed(kBaseSeed, 0);
  std::vector<SweepConfig> points;
  for (const Policy& p : policies) {
    SweepConfig cfg;
    if (cli.smoke) {
      cfg.group_size = 256;
      cfg.leaves = 64;
    }
    cfg.alpha = 0.2;
    cfg.protocol.num_nack_target = 20;
    cfg.protocol.max_multicast_rounds = p.max_rounds;
    cfg.protocol.early_unicast_by_size = p.by_size;
    cfg.messages = cli.smoke ? 2 : 8;
    cfg.seed = seed;
    points.push_back(cfg);
  }
  const auto runs = run_sweep_grid(points);
  json.add_seeds(points);

  Table t({"policy", "avg rounds", "total bw overhead", "unicast users/msg",
           "USR pkts/msg", "avg duration ms"});
  t.set_precision(2);
  for (std::size_t i = 0; i < std::size(policies); ++i) {
    const auto& run = runs[i];
    double unicast = 0, usr = 0, dur = 0;
    for (const auto& m : run.messages) {
      unicast += static_cast<double>(m.unicast_users);
      usr += static_cast<double>(m.usr_packets);
      dur += m.duration_ms;
    }
    const double n = static_cast<double>(run.messages.size());
    t.add_row({std::string(policies[i].name), run.mean_rounds_to_all(),
               run.mean_total_bandwidth_overhead(), unicast / n, usr / n,
               dur / n});
  }
  json.table(std::cout, t);
  json.note(std::cout,
            "Shape check: earlier unicast shortens the tail (fewer "
            "rounds, shorter duration) at a small USR-byte cost; "
            "multicast-only has the longest worst case.");
  return json.write();
}
