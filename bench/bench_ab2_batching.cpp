// AB2 (ablation) — periodic batch rekeying vs per-request rekeying.
//
// The paper's premise (§1-2): batching J joins and L leaves into one
// marking pass costs far fewer encryptions (and one signed message instead
// of J+L) than rekeying after every request. This ablation measures both
// on identical request sequences.
//
// Cells are independent with per-cell seeds, so they fan out across the
// worker pool; results are identical for any REKEY_THREADS setting.
#include <iostream>

#include "common/parallel.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "keytree/marking.h"
#include "keytree/rekey_subtree.h"
#include "sweep.h"

using namespace rekey;

namespace {

struct Cost {
  double encryptions = 0;
  double messages = 0;
};

// Process J joins + L leaves as one batch or as singleton batches, on the
// same initial tree and the same request sets.
Cost run(std::size_t N, std::size_t J, std::size_t L, bool batched,
         std::uint64_t seed) {
  Rng rng(seed);
  tree::KeyTree kt(4, rng.next_u64());
  kt.populate(N);
  std::vector<tree::MemberId> leaves;
  for (const auto pick : rng.sample_without_replacement(N, L))
    leaves.push_back(static_cast<tree::MemberId>(pick));
  std::vector<tree::MemberId> joins;
  for (std::size_t j = 0; j < J; ++j)
    joins.push_back(static_cast<tree::MemberId>(N + j));

  Cost c;
  std::uint32_t msg = 1;
  auto run_batch = [&](std::span<const tree::MemberId> js,
                       std::span<const tree::MemberId> ls) {
    tree::Marker m(kt);
    const auto upd = m.run(js, ls);
    const auto payload = tree::generate_rekey_payload(kt, upd, msg++);
    c.encryptions += static_cast<double>(payload.encryptions.size());
    c.messages += 1;
  };

  if (batched) {
    run_batch(joins, leaves);
  } else {
    // Interleave singleton requests, as they would arrive.
    std::size_t ji = 0, li = 0;
    while (ji < joins.size() || li < leaves.size()) {
      if (li < leaves.size()) run_batch({}, std::span(&leaves[li++], 1));
      if (ji < joins.size()) run_batch(std::span(&joins[ji++], 1), {});
    }
  }
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rekey::bench;
  const BenchCli cli = parse_bench_cli(argc, argv);
  FigureJson json("AB2", cli);

  json.header(
      std::cout, "AB2",
      "batch rekeying vs per-request rekeying (the paper's premise)",
      "N=4096, d=4, J=L, identical request sets, 2 trials");

  const std::uint64_t kTrials = cli.smoke ? 1 : 2;
  const std::size_t kGroupSize = cli.smoke ? 512 : 4096;
  const std::vector<std::size_t> rs =
      cli.smoke ? std::vector<std::size_t>{16, 64}
                : std::vector<std::size_t>{16, 64, 256, 1024};

  // Cell layout: [r index][batched, per-request] x [trial].
  struct Cell {
    std::size_t r;
    bool batched;
    std::uint64_t seed;
  };
  std::vector<Cell> cells;
  for (const std::size_t r : rs)
    for (const bool batched : {true, false})
      for (std::uint64_t s = 0; s < kTrials; ++s)
        cells.push_back({r, batched, 40 + s});
  std::vector<double> encs(cells.size());
  parallel_for_each_index(cells.size(), [&](std::size_t i) {
    encs[i] = run(kGroupSize, cells[i].r, cells[i].r, cells[i].batched,
                  cells[i].seed)
                  .encryptions;
  });

  Table t({"J=L", "batched encs", "per-req encs", "ratio", "batched msgs",
           "per-req msgs"});
  t.set_precision(1);
  std::size_t cell = 0;
  for (const std::size_t r : rs) {
    RunningStats be, pe;
    for (std::uint64_t s = 0; s < kTrials; ++s) be.add(encs[cell++]);
    for (std::uint64_t s = 0; s < kTrials; ++s) pe.add(encs[cell++]);
    t.add_row({static_cast<long long>(r), be.mean(), pe.mean(),
               pe.mean() / be.mean(), 1.0, static_cast<double>(2 * r)});
  }
  json.table(std::cout, t);
  json.note(std::cout,
            "Shape check: the per-request cost ratio grows with the "
            "batch (shared ancestor keys are re-encrypted once instead "
            "of once per request), and signing drops from 2J messages "
            "to 1.");
  return json.write();
}
