// F12 — adaptive adjustment of the proactivity factor (protocol paper
// Fig 12): rho per rekey message for initial rho = 1 (left) and rho = 2
// (right), alpha sweep. rho settles within a few messages, and both
// starting points converge to matching stable values.
#include <iostream>

#include "common/table.h"
#include "sweep.h"

using namespace rekey;
using namespace rekey::bench;

namespace {

void emit_trace(FigureJson& json, const std::vector<transport::RunMetrics>& runs,
                std::size_t first) {
  Table t({"msg", "alpha=0", "alpha=20%", "alpha=40%", "alpha=100%"});
  t.set_precision(2);
  std::vector<std::vector<double>> series;
  for (std::size_t a = 0; a < std::size(kAlphas); ++a) {
    std::vector<double> rhos;
    for (const auto& m : runs[first + a].messages) rhos.push_back(m.rho_used);
    series.push_back(std::move(rhos));
  }
  for (std::size_t i = 0; i < series[0].size(); ++i)
    t.add_row({static_cast<long long>(i), series[0][i], series[1][i],
               series[2][i], series[3][i]});
  json.table(std::cout, t);
}

}  // namespace

int main(int argc, char** argv) {
  const BenchCli cli = parse_bench_cli(argc, argv);
  FigureJson json("F12", cli);

  constexpr std::uint64_t kBaseSeed = 0xF12;
  const double initial_rhos[] = {1.0, 2.0};
  const int kMessages = cli.smoke ? 4 : 25;

  std::vector<SweepConfig> points;
  for (const double initial_rho : initial_rhos) {
    for (const double alpha : kAlphas) {
      SweepConfig cfg;
      // Adaptive rho with numNACK=20 needs a group comfortably larger than
      // the NACK target to converge inside the round cap.
      if (cli.smoke) {
        cfg.group_size = 1024;
        cfg.leaves = 256;
      }
      cfg.alpha = alpha;
      cfg.protocol.initial_rho = initial_rho;
      cfg.protocol.num_nack_target = 20;
      cfg.protocol.max_multicast_rounds = 0;
      cfg.messages = kMessages;
      cfg.seed = point_seed(kBaseSeed, points.size());
      points.push_back(cfg);
    }
  }
  const auto runs = run_sweep_grid(points);
  json.add_seeds(points);

  json.header(std::cout, "F12 (left)",
              "proactivity factor per rekey message, initial rho=1",
              "N=4096, L=N/4, k=10, numNACK=20, 25 messages");
  emit_trace(json, runs, 0);
  json.header(std::cout, "F12 (right)",
              "proactivity factor per rekey message, initial rho=2",
              "same parameters");
  emit_trace(json, runs, std::size(kAlphas));
  json.note(std::cout,
            "Shape check: rho settles within a few messages; the two "
            "starting points reach matching stable values per alpha.");
  return json.write();
}
