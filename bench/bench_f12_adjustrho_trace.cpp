// F12 — adaptive adjustment of the proactivity factor (protocol paper
// Fig 12): rho per rekey message for initial rho = 1 (left) and rho = 2
// (right), alpha sweep. rho settles within a few messages, and both
// starting points converge to matching stable values.
#include <iostream>

#include "common/table.h"
#include "sweep.h"

using namespace rekey;
using namespace rekey::bench;

namespace {

void trace(double initial_rho) {
  Table t({"msg", "alpha=0", "alpha=20%", "alpha=40%", "alpha=100%"});
  t.set_precision(2);
  std::vector<std::vector<double>> series;
  for (const double alpha : kAlphas) {
    SweepConfig cfg;
    cfg.alpha = alpha;
    cfg.protocol.initial_rho = initial_rho;
    cfg.protocol.num_nack_target = 20;
    cfg.protocol.max_multicast_rounds = 0;
    cfg.messages = 25;
    cfg.seed = static_cast<std::uint64_t>(initial_rho * 10 + alpha * 100);
    const auto run = run_sweep(cfg);
    std::vector<double> rhos;
    for (const auto& m : run.messages) rhos.push_back(m.rho_used);
    series.push_back(std::move(rhos));
  }
  for (std::size_t i = 0; i < series[0].size(); ++i)
    t.add_row({static_cast<long long>(i), series[0][i], series[1][i],
               series[2][i], series[3][i]});
  t.print(std::cout);
}

}  // namespace

int main() {
  print_figure_header(std::cout, "F12 (left)",
                      "proactivity factor per rekey message, initial rho=1",
                      "N=4096, L=N/4, k=10, numNACK=20, 25 messages");
  trace(1.0);
  print_figure_header(std::cout, "F12 (right)",
                      "proactivity factor per rekey message, initial rho=2",
                      "same parameters");
  trace(2.0);
  std::cout << "\nShape check: rho settles within a few messages; the two "
               "starting points reach matching stable values per alpha.\n";
  return 0;
}
