// F9 — impact of a fixed proactivity factor rho (protocol paper Fig 9).
//
// Left:  average #NACKs after round 1 vs rho (log-scale in the paper:
//        expect roughly exponential decay).
// Right: average #rounds until all users have their keys vs rho (decreases
//        then levels off).
#include <iostream>

#include "common/table.h"
#include "sweep.h"

using namespace rekey;
using namespace rekey::bench;

int main(int argc, char** argv) {
  const BenchCli cli = parse_bench_cli(argc, argv);
  FigureJson json("F9", cli);

  const std::vector<double> rhos =
      cli.smoke ? std::vector<double>{1.0, 1.6, 3.0}
                : std::vector<double>{1.0, 1.2, 1.4, 1.6, 1.8, 2.0, 2.5, 3.0};
  const int kMessages = cli.smoke ? 2 : 8;
  constexpr std::uint64_t kBaseSeed = 0xF09;

  std::vector<SweepConfig> points;
  for (const double rho : rhos) {
    for (const double alpha : kAlphas) {
      SweepConfig cfg;
      if (cli.smoke) {
        cfg.group_size = 256;
        cfg.leaves = 64;
      }
      cfg.alpha = alpha;
      cfg.protocol.block_size = 10;
      cfg.protocol.adaptive_rho = false;
      cfg.protocol.initial_rho = rho;
      cfg.protocol.max_multicast_rounds = 0;
      cfg.messages = kMessages;
      cfg.seed = point_seed(kBaseSeed, points.size());
      points.push_back(cfg);
    }
  }
  const auto runs = run_sweep_grid(points);
  json.add_seeds(points);

  Table nacks({"rho", "alpha=0", "alpha=20%", "alpha=40%", "alpha=100%"});
  nacks.set_precision(2);
  Table rounds({"rho", "alpha=0", "alpha=20%", "alpha=40%", "alpha=100%"});
  rounds.set_precision(3);

  std::size_t point = 0;
  for (const double rho : rhos) {
    std::vector<Table::Cell> nrow{rho};
    std::vector<Table::Cell> rrow{rho};
    for (std::size_t a = 0; a < std::size(kAlphas); ++a) {
      const auto& run = runs[point++];
      nrow.push_back(run.mean_round1_nacks());
      rrow.push_back(run.mean_rounds_to_all());
    }
    nacks.add_row(nrow);
    rounds.add_row(rrow);
  }

  json.header(std::cout, "F9 (left)",
              "average #NACKs after round 1 vs rho",
              "N=4096, L=N/4, k=10, fixed rho, 8 messages/point");
  json.table(std::cout, nacks);

  json.header(std::cout, "F9 (right)",
              "average #rounds for all users vs rho",
              "same runs; multicast-only");
  json.table(std::cout, rounds);

  json.note(std::cout,
            "Shape check: NACKs fall steeply (exponentially) in rho; "
            "rounds decrease then level off near 1.");
  return json.write();
}
