// AB4 (ablation) — key tree degree. The paper fixes d=4; this sweep shows
// why: per-batch encryption cost is minimized around d=4 (the classic
// LKH trade-off between tree height and per-node fanout), and the message
// size follows.
//
// Cells are independent with per-cell seeds, so they fan out across the
// worker pool; results are identical for any REKEY_THREADS setting.
#include <iostream>

#include "common/parallel.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "keytree/marking.h"
#include "packet/assign.h"
#include "sweep.h"

using namespace rekey;

namespace {

struct DegreeCost {
  double encryptions = 0;
  double packets = 0;
  double height = 0;
};

DegreeCost run(unsigned d, std::size_t N, std::size_t L, std::uint64_t seed) {
  Rng rng(seed);
  tree::KeyTree kt(d, rng.next_u64());
  kt.populate(N);
  std::vector<tree::MemberId> leaves;
  for (const auto pick : rng.sample_without_replacement(N, L))
    leaves.push_back(static_cast<tree::MemberId>(pick));
  tree::Marker m(kt);
  const auto upd = m.run({}, leaves);
  const auto payload = tree::generate_rekey_payload(kt, upd, 1);
  DegreeCost c;
  c.encryptions = static_cast<double>(payload.encryptions.size());
  c.packets =
      static_cast<double>(packet::assign_keys(payload).packets.size());
  c.height = kt.height();
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rekey::bench;
  const BenchCli cli = parse_bench_cli(argc, argv);
  FigureJson json("AB4", cli);

  json.header(
      std::cout, "AB4",
      "key-tree degree sweep: batch cost vs d",
      "N=4096, J=0, L in {64, N/4}, 3 trials/point");

  const std::uint64_t kTrials = cli.smoke ? 1 : 3;
  const std::size_t kGroupSize = cli.smoke ? 512 : 4096;
  const std::size_t kSmallL = cli.smoke ? 16 : 64;
  const std::size_t kBigL = kGroupSize / 4;
  const std::vector<unsigned> degrees =
      cli.smoke ? std::vector<unsigned>{2, 4, 16}
                : std::vector<unsigned>{2, 3, 4, 8, 16};

  // Cell layout per degree: kTrials small-L cells then kTrials big-L cells.
  std::vector<DegreeCost> costs(degrees.size() * 2 * kTrials);
  parallel_for_each_index(costs.size(), [&](std::size_t i) {
    const unsigned d = degrees[i / (2 * kTrials)];
    const bool big = (i / kTrials) % 2 == 1;
    const std::uint64_t s = i % kTrials;
    costs[i] = big ? run(d, kGroupSize, kBigL, 80 + s)
                   : run(d, kGroupSize, kSmallL, 60 + s);
  });

  Table t({"d", "height", "encs (L=" + std::to_string(kSmallL) + ")",
           "pkts (L=" + std::to_string(kSmallL) + ")",
           "encs (L=" + std::to_string(kBigL) + ")",
           "pkts (L=" + std::to_string(kBigL) + ")"});
  t.set_precision(1);
  for (std::size_t di = 0; di < degrees.size(); ++di) {
    RunningStats e_small, p_small, e_big, p_big, h;
    for (std::uint64_t s = 0; s < kTrials; ++s) {
      const auto& small = costs[di * 2 * kTrials + s];
      const auto& big = costs[di * 2 * kTrials + kTrials + s];
      e_small.add(small.encryptions);
      p_small.add(small.packets);
      e_big.add(big.encryptions);
      p_big.add(big.packets);
      h.add(small.height);
    }
    t.add_row({static_cast<long long>(degrees[di]), h.mean(),
               e_small.mean(), p_small.mean(), e_big.mean(), p_big.mean()});
  }
  json.table(std::cout, t);
  json.note(std::cout,
            "Shape check: sparse batches (L=64) favour d~4 (cost "
            "~ L*d*log_d N); dense batches flatten the optimum because "
            "most of the tree is touched either way.");
  return json.write();
}
