// F20 — the extra server bandwidth of adaptive proactive FEC versus
// reactive-only, across group sizes (protocol paper Fig 20). The extra
// overhead grows with N but stays below ~0.4 even at N=16384.
#include <iostream>

#include "common/table.h"
#include "sweep.h"

using namespace rekey;
using namespace rekey::bench;

namespace {

SweepConfig make_config(std::size_t N, std::size_t k, bool adaptive,
                        std::uint64_t seed) {
  SweepConfig cfg;
  cfg.group_size = N;
  cfg.leaves = N / 4;
  cfg.alpha = 0.2;
  cfg.protocol.block_size = k;
  cfg.protocol.adaptive_rho = adaptive;
  cfg.protocol.initial_rho = 1.0;
  cfg.protocol.num_nack_target = 20;
  cfg.protocol.max_multicast_rounds = 0;
  cfg.messages = N >= 8192 ? 4 : 8;
  cfg.seed = seed;
  return cfg;
}

}  // namespace

int main() {
  const std::size_t ks[] = {1, 5, 10, 20, 30, 40, 50};
  constexpr std::uint64_t kBaseSeed = 0xF20;
  print_figure_header(
      std::cout, "F20",
      "server bandwidth overhead: adaptive rho vs fixed rho=1, by N",
      "L=N/4, alpha=20%, numNACK=20; fewer messages at the largest N");

  // Adaptive and reactive points share a seed per (k, N) pair so the
  // comparison sees the same round-1 loss realization.
  std::vector<SweepConfig> points;
  std::size_t pair = 0;
  for (const std::size_t k : ks) {
    for (const std::size_t N : {1024u, 8192u, 16384u}) {
      const std::uint64_t seed = point_seed(kBaseSeed, pair++);
      points.push_back(make_config(N, k, true, seed));
      points.push_back(make_config(N, k, false, seed));
    }
  }
  const auto runs = run_sweep_grid(points);

  Table t({"k", "N=1024 adapt", "N=1024 rho1", "N=8192 adapt",
           "N=8192 rho1", "N=16384 adapt", "N=16384 rho1"});
  t.set_precision(3);
  std::size_t point = 0;
  for (const std::size_t k : ks) {
    std::vector<Table::Cell> row{static_cast<long long>(k)};
    for (int n = 0; n < 3; ++n) {
      row.push_back(runs[point++].mean_bandwidth_overhead());
      row.push_back(runs[point++].mean_bandwidth_overhead());
    }
    t.add_row(row);
  }
  t.print(std::cout);
  std::cout << "\nShape check: adaptive-minus-reactive gap grows with N but "
               "stays under ~0.4 at N=16384 (k >= 5).\n";
  return 0;
}
