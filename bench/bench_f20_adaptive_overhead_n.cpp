// F20 — the extra server bandwidth of adaptive proactive FEC versus
// reactive-only, across group sizes (protocol paper Fig 20). The extra
// overhead grows with N but stays below ~0.4 even at N=16384.
#include <iostream>

#include "common/table.h"
#include "sweep.h"

using namespace rekey;
using namespace rekey::bench;

namespace {

SweepConfig make_config(std::size_t N, std::size_t k, bool adaptive,
                        std::uint64_t seed, bool smoke) {
  SweepConfig cfg;
  cfg.group_size = N;
  cfg.leaves = N / 4;
  cfg.alpha = 0.2;
  cfg.protocol.block_size = k;
  cfg.protocol.adaptive_rho = adaptive;
  cfg.protocol.initial_rho = 1.0;
  cfg.protocol.num_nack_target = 20;
  cfg.protocol.max_multicast_rounds = 0;
  cfg.messages = smoke ? 2 : (N >= 8192 ? 4 : 8);
  cfg.seed = seed;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchCli cli = parse_bench_cli(argc, argv);
  FigureJson json("F20", cli);

  const std::vector<std::size_t> ks =
      cli.smoke ? std::vector<std::size_t>{1, 10, 50}
                : std::vector<std::size_t>{1, 5, 10, 20, 30, 40, 50};
  const std::vector<std::size_t> sizes =
      cli.smoke ? std::vector<std::size_t>{256, 512}
                : std::vector<std::size_t>{1024, 8192, 16384};
  constexpr std::uint64_t kBaseSeed = 0xF20;
  json.header(
      std::cout, "F20",
      "server bandwidth overhead: adaptive rho vs fixed rho=1, by N",
      "L=N/4, alpha=20%, numNACK=20; fewer messages at the largest N");

  // Adaptive and reactive points share a seed per (k, N) pair so the
  // comparison sees the same round-1 loss realization.
  std::vector<SweepConfig> points;
  std::size_t pair = 0;
  for (const std::size_t k : ks) {
    for (const std::size_t N : sizes) {
      const std::uint64_t seed = point_seed(kBaseSeed, pair++);
      points.push_back(make_config(N, k, true, seed, cli.smoke));
      points.push_back(make_config(N, k, false, seed, cli.smoke));
    }
  }
  const auto runs = run_sweep_grid(points);
  json.add_seeds(points);

  std::vector<std::string> headers{"k"};
  for (const std::size_t N : sizes) {
    headers.push_back("N=" + std::to_string(N) + " adapt");
    headers.push_back("N=" + std::to_string(N) + " rho1");
  }
  Table t(headers);
  t.set_precision(3);
  std::size_t point = 0;
  for (const std::size_t k : ks) {
    std::vector<Table::Cell> row{static_cast<long long>(k)};
    for (std::size_t n = 0; n < sizes.size(); ++n) {
      row.push_back(runs[point++].mean_bandwidth_overhead());
      row.push_back(runs[point++].mean_bandwidth_overhead());
    }
    t.add_row(row);
  }
  json.table(std::cout, t);
  json.note(std::cout,
            "Shape check: adaptive-minus-reactive gap grows with N but "
            "stays under ~0.4 at N=16384 (k >= 5).");
  return json.write();
}
