// F20 — the extra server bandwidth of adaptive proactive FEC versus
// reactive-only, across group sizes (protocol paper Fig 20). The extra
// overhead grows with N but stays below ~0.4 even at N=16384.
#include <iostream>

#include "common/table.h"
#include "sweep.h"

using namespace rekey;
using namespace rekey::bench;

namespace {

double overhead(std::size_t N, std::size_t k, bool adaptive,
                std::uint64_t seed) {
  SweepConfig cfg;
  cfg.group_size = N;
  cfg.leaves = N / 4;
  cfg.alpha = 0.2;
  cfg.protocol.block_size = k;
  cfg.protocol.adaptive_rho = adaptive;
  cfg.protocol.initial_rho = 1.0;
  cfg.protocol.num_nack_target = 20;
  cfg.protocol.max_multicast_rounds = 0;
  cfg.messages = N >= 8192 ? 4 : 8;
  cfg.seed = seed;
  return run_sweep(cfg).mean_bandwidth_overhead();
}

}  // namespace

int main() {
  const std::size_t ks[] = {1, 5, 10, 20, 30, 40, 50};
  print_figure_header(
      std::cout, "F20",
      "server bandwidth overhead: adaptive rho vs fixed rho=1, by N",
      "L=N/4, alpha=20%, numNACK=20; fewer messages at the largest N");

  Table t({"k", "N=1024 adapt", "N=1024 rho1", "N=8192 adapt",
           "N=8192 rho1", "N=16384 adapt", "N=16384 rho1"});
  t.set_precision(3);
  for (const std::size_t k : ks) {
    std::vector<Table::Cell> row{static_cast<long long>(k)};
    for (const std::size_t N : {1024u, 8192u, 16384u}) {
      const std::uint64_t seed = k * 37 + N;
      row.push_back(overhead(N, k, true, seed));
      row.push_back(overhead(N, k, false, seed));
    }
    t.add_row(row);
  }
  t.print(std::cout);
  std::cout << "\nShape check: adaptive-minus-reactive gap grows with N but "
               "stays under ~0.4 at N=16384 (k >= 5).\n";
  return 0;
}
