// F13 — NACKs received after round 1, per rekey message, under adaptive
// rho (protocol paper Fig 13): initial rho = 1 (left) and 2 (right). The
// count stabilizes quickly, around ~1.5x numNACK for alpha > 0, with
// larger swings at alpha = 0 where small-loss sensitivity bites.
#include <iostream>

#include "common/table.h"
#include "sweep.h"

using namespace rekey;
using namespace rekey::bench;

namespace {

void print_trace(const std::vector<transport::RunMetrics>& runs,
                 std::size_t first) {
  Table t({"msg", "alpha=0", "alpha=20%", "alpha=40%", "alpha=100%"});
  t.set_precision(0);
  std::vector<std::vector<double>> series;
  for (std::size_t a = 0; a < std::size(kAlphas); ++a) {
    std::vector<double> nacks;
    for (const auto& m : runs[first + a].messages)
      nacks.push_back(static_cast<double>(m.round1_nacks));
    series.push_back(std::move(nacks));
  }
  for (std::size_t i = 0; i < series[0].size(); ++i)
    t.add_row({static_cast<long long>(i), series[0][i], series[1][i],
               series[2][i], series[3][i]});
  t.print(std::cout);
}

}  // namespace

int main() {
  constexpr std::uint64_t kBaseSeed = 0xF13;
  const double initial_rhos[] = {1.0, 2.0};

  std::vector<SweepConfig> points;
  for (const double initial_rho : initial_rhos) {
    for (const double alpha : kAlphas) {
      SweepConfig cfg;
      cfg.alpha = alpha;
      cfg.protocol.initial_rho = initial_rho;
      cfg.protocol.num_nack_target = 20;
      cfg.protocol.max_multicast_rounds = 0;
      cfg.messages = 25;
      cfg.seed = point_seed(kBaseSeed, points.size());
      points.push_back(cfg);
    }
  }
  const auto runs = run_sweep_grid(points);

  print_figure_header(std::cout, "F13 (left)",
                      "#NACKs after round 1 per message, initial rho=1",
                      "N=4096, L=N/4, k=10, numNACK=20, 25 messages");
  print_trace(runs, 0);
  print_figure_header(std::cout, "F13 (right)",
                      "#NACKs after round 1 per message, initial rho=2",
                      "same parameters");
  print_trace(runs, std::size(kAlphas));
  std::cout << "\nShape check: counts stabilize near the numNACK=20 target "
               "(within ~1.5x for alpha > 0).\n";
  return 0;
}
