// F13 — NACKs received after round 1, per rekey message, under adaptive
// rho (protocol paper Fig 13): initial rho = 1 (left) and 2 (right). The
// count stabilizes quickly, around ~1.5x numNACK for alpha > 0, with
// larger swings at alpha = 0 where small-loss sensitivity bites.
#include <iostream>

#include "common/table.h"
#include "sweep.h"

using namespace rekey;
using namespace rekey::bench;

namespace {

void emit_trace(FigureJson& json, const std::vector<transport::RunMetrics>& runs,
                std::size_t first) {
  Table t({"msg", "alpha=0", "alpha=20%", "alpha=40%", "alpha=100%"});
  t.set_precision(0);
  std::vector<std::vector<double>> series;
  for (std::size_t a = 0; a < std::size(kAlphas); ++a) {
    std::vector<double> nacks;
    for (const auto& m : runs[first + a].messages)
      nacks.push_back(static_cast<double>(m.round1_nacks));
    series.push_back(std::move(nacks));
  }
  for (std::size_t i = 0; i < series[0].size(); ++i)
    t.add_row({static_cast<long long>(i), series[0][i], series[1][i],
               series[2][i], series[3][i]});
  json.table(std::cout, t);
}

}  // namespace

int main(int argc, char** argv) {
  const BenchCli cli = parse_bench_cli(argc, argv);
  FigureJson json("F13", cli);

  constexpr std::uint64_t kBaseSeed = 0xF13;
  const double initial_rhos[] = {1.0, 2.0};
  const int kMessages = cli.smoke ? 4 : 25;

  std::vector<SweepConfig> points;
  for (const double initial_rho : initial_rhos) {
    for (const double alpha : kAlphas) {
      SweepConfig cfg;
      if (cli.smoke) {
        cfg.group_size = 256;
        cfg.leaves = 64;
      }
      cfg.alpha = alpha;
      cfg.protocol.initial_rho = initial_rho;
      cfg.protocol.num_nack_target = 20;
      cfg.protocol.max_multicast_rounds = 0;
      cfg.messages = kMessages;
      cfg.seed = point_seed(kBaseSeed, points.size());
      points.push_back(cfg);
    }
  }
  const auto runs = run_sweep_grid(points);
  json.add_seeds(points);

  json.header(std::cout, "F13 (left)",
              "#NACKs after round 1 per message, initial rho=1",
              "N=4096, L=N/4, k=10, numNACK=20, 25 messages");
  emit_trace(json, runs, 0);
  json.header(std::cout, "F13 (right)",
              "#NACKs after round 1 per message, initial rho=2",
              "same parameters");
  emit_trace(json, runs, std::size(kAlphas));
  json.note(std::cout,
            "Shape check: counts stabilize near the numNACK=20 target "
            "(within ~1.5x for alpha > 0).");
  return json.write();
}
