// F10 — per-user delivery latency and server bandwidth vs rho (protocol
// paper Fig 10).
//
// Left:  fraction of users needing r rounds, for rho in {1, 1.6, 2}
//        (alpha=20%): >94% recover in round 1 even at rho=1, >99.9% at 1.6.
// Right: average server bandwidth overhead vs rho: flat while reactive
//        retransmissions dominate, then linear once proactive parities do.
#include <iostream>
#include <map>

#include "common/table.h"
#include "sweep.h"

using namespace rekey;
using namespace rekey::bench;

int main(int argc, char** argv) {
  const BenchCli cli = parse_bench_cli(argc, argv);
  FigureJson json("F10", cli);

  const int kMessages = cli.smoke ? 2 : 8;
  constexpr std::uint64_t kBaseSeed = 0xF10;
  const double left_rhos[] = {1.0, 1.6, 2.0};
  const std::vector<double> right_rhos =
      cli.smoke ? std::vector<double>{1.0, 2.0, 3.0}
                : std::vector<double>{1.0, 1.25, 1.5, 1.75, 2.0, 2.5, 3.0};

  std::vector<SweepConfig> points;
  for (const double rho : left_rhos) {
    SweepConfig cfg;
    if (cli.smoke) {
      cfg.group_size = 256;
      cfg.leaves = 64;
    }
    cfg.protocol.adaptive_rho = false;
    cfg.protocol.initial_rho = rho;
    cfg.protocol.max_multicast_rounds = 0;
    cfg.messages = kMessages;
    cfg.seed = point_seed(kBaseSeed, points.size());
    points.push_back(cfg);
  }
  for (const double rho : right_rhos) {
    for (const double alpha : kAlphas) {
      SweepConfig cfg;
      if (cli.smoke) {
        cfg.group_size = 256;
        cfg.leaves = 64;
      }
      cfg.alpha = alpha;
      cfg.protocol.adaptive_rho = false;
      cfg.protocol.initial_rho = rho;
      cfg.protocol.max_multicast_rounds = 0;
      cfg.messages = kMessages;
      cfg.seed = point_seed(kBaseSeed, points.size());
      points.push_back(cfg);
    }
  }
  const auto runs = run_sweep_grid(points);
  json.add_seeds(points);

  json.header(
      std::cout, "F10 (left)", "fraction of users needing r rounds",
      "N=4096, L=N/4, k=10, alpha=20%, fixed rho, 8 messages/point");
  {
    Table t({"round", "rho=1", "rho=1.6", "rho=2"});
    t.set_precision(6);
    std::map<double, std::map<int, double>> dist;
    int max_round = 1;
    for (std::size_t i = 0; i < std::size(left_rhos); ++i) {
      dist[left_rhos[i]] = runs[i].round_distribution();
      for (const auto& [r, frac] : dist[left_rhos[i]])
        max_round = std::max(max_round, r);
    }
    for (int r = 1; r <= max_round; ++r) {
      auto frac = [&](double rho) {
        const auto it = dist[rho].find(r);
        return it == dist[rho].end() ? 0.0 : it->second;
      };
      t.add_row({static_cast<long long>(r), frac(1.0), frac(1.6),
                 frac(2.0)});
    }
    json.table(std::cout, t);
  }

  json.header(std::cout, "F10 (right)",
              "average server bandwidth overhead vs rho",
              "same workload; alpha sweep");
  {
    Table t({"rho", "alpha=0", "alpha=20%", "alpha=40%", "alpha=100%"});
    t.set_precision(3);
    std::size_t point = std::size(left_rhos);
    for (const double rho : right_rhos) {
      std::vector<Table::Cell> row{rho};
      for (std::size_t a = 0; a < std::size(kAlphas); ++a)
        row.push_back(runs[point++].mean_bandwidth_overhead());
      t.add_row(row);
    }
    json.table(std::cout, t);
  }
  json.note(std::cout,
            "Shape check: round-1 fraction > 0.94 at rho=1 "
            "(alpha=20%), rising with rho; overhead flat then linear.");
  return json.write();
}
