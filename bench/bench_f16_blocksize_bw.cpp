// F16 — server bandwidth overhead vs block size under adaptive rho
// (protocol paper Fig 16): by alpha at N=4096 (left) and by group size at
// alpha=20% (right). High overhead at k=1 (each rho step doubles a
// one-packet block), flat for k >= 5, last-block-duplicate bump at k=50;
// small groups (N=1024) fluctuate because the message is only ~26 packets.
#include <iostream>

#include "common/table.h"
#include "sweep.h"

using namespace rekey;
using namespace rekey::bench;

int main(int argc, char** argv) {
  const BenchCli cli = parse_bench_cli(argc, argv);
  FigureJson json("F16", cli);

  const std::vector<std::size_t> ks =
      cli.smoke ? std::vector<std::size_t>{1, 10, 50}
                : std::vector<std::size_t>{1, 5, 10, 20, 30, 40, 50};
  const std::vector<std::size_t> group_sizes =
      cli.smoke ? std::vector<std::size_t>{256, 512}
                : std::vector<std::size_t>{1024, 4096, 8192, 16384};
  const int kMessages = cli.smoke ? 2 : 8;
  constexpr std::uint64_t kBaseSeed = 0xF16;

  std::vector<SweepConfig> points;
  for (const std::size_t k : ks) {
    for (const double alpha : kAlphas) {
      SweepConfig cfg;
      if (cli.smoke) {
        cfg.group_size = 256;
        cfg.leaves = 64;
      }
      cfg.alpha = alpha;
      cfg.protocol.block_size = k;
      cfg.protocol.num_nack_target = 20;
      cfg.protocol.max_multicast_rounds = 0;
      cfg.messages = kMessages;
      cfg.seed = point_seed(kBaseSeed, points.size());
      points.push_back(cfg);
    }
  }
  const std::size_t left_points = points.size();
  for (const std::size_t k : ks) {
    for (const std::size_t N : group_sizes) {
      SweepConfig cfg;
      cfg.group_size = N;
      cfg.leaves = N / 4;
      cfg.alpha = 0.2;
      cfg.protocol.block_size = k;
      cfg.protocol.num_nack_target = 20;
      cfg.protocol.max_multicast_rounds = 0;
      cfg.messages = cli.smoke ? 2 : (N >= 8192 ? 4 : 8);
      cfg.seed = point_seed(kBaseSeed, points.size());
      points.push_back(cfg);
    }
  }
  const auto runs = run_sweep_grid(points);
  json.add_seeds(points);

  json.header(
      std::cout, "F16 (left)",
      "average server bandwidth overhead vs k (adaptive rho)",
      "N=4096, L=N/4, numNACK=20, 8 messages/point");
  {
    Table t({"k", "alpha=0", "alpha=20%", "alpha=40%", "alpha=100%"});
    t.set_precision(3);
    std::size_t point = 0;
    for (const std::size_t k : ks) {
      std::vector<Table::Cell> row{static_cast<long long>(k)};
      for (std::size_t a = 0; a < std::size(kAlphas); ++a)
        row.push_back(runs[point++].mean_bandwidth_overhead());
      t.add_row(row);
    }
    json.table(std::cout, t);
  }

  json.header(
      std::cout, "F16 (right)",
      "average server bandwidth overhead vs k for group sizes",
      "L=N/4, alpha=20%, numNACK=20; fewer messages at the largest N");
  {
    std::vector<std::string> headers{"k"};
    for (const std::size_t N : group_sizes)
      headers.push_back("N=" + std::to_string(N));
    Table t(headers);
    t.set_precision(3);
    std::size_t point = left_points;
    for (const std::size_t k : ks) {
      std::vector<Table::Cell> row{static_cast<long long>(k)};
      for (std::size_t n = 0; n < group_sizes.size(); ++n)
        row.push_back(runs[point++].mean_bandwidth_overhead());
      t.add_row(row);
    }
    json.table(std::cout, t);
  }
  json.note(std::cout,
            "Shape check: k=1 much worse under adaptive rho; flat for "
            "5 <= k <= 40; N=1024 noisiest.");
  return json.write();
}
