// F15 — NACK fluctuation vs block size under adaptive rho (protocol paper
// Fig 15): round-1 NACKs per message for k in {1, 5, 10, 30, 50},
// numNACK=20, alpha=20%. Very small k causes coarse rho steps and thus
// larger swings (up to ~2x the target at k=1 or 5).
#include <iostream>

#include "common/table.h"
#include "sweep.h"

using namespace rekey;
using namespace rekey::bench;

namespace {

constexpr std::size_t kBlockSizes[] = {1, 5, 10, 30, 50};

void emit_trace(FigureJson& json, const std::vector<transport::RunMetrics>& runs,
                std::size_t first) {
  Table t({"msg", "k=1", "k=5", "k=10", "k=30", "k=50"});
  t.set_precision(0);
  std::vector<std::vector<double>> series;
  for (std::size_t i = 0; i < std::size(kBlockSizes); ++i) {
    std::vector<double> nacks;
    for (const auto& m : runs[first + i].messages)
      nacks.push_back(static_cast<double>(m.round1_nacks));
    series.push_back(std::move(nacks));
  }
  for (std::size_t i = 0; i < series[0].size(); ++i)
    t.add_row({static_cast<long long>(i), series[0][i], series[1][i],
               series[2][i], series[3][i], series[4][i]});
  json.table(std::cout, t);
}

}  // namespace

int main(int argc, char** argv) {
  const BenchCli cli = parse_bench_cli(argc, argv);
  FigureJson json("F15", cli);

  constexpr std::uint64_t kBaseSeed = 0xF15;
  const double initial_rhos[] = {1.0, 2.0};
  const int kMessages = cli.smoke ? 4 : 25;

  std::vector<SweepConfig> points;
  for (const double initial_rho : initial_rhos) {
    for (const std::size_t k : kBlockSizes) {
      SweepConfig cfg;
      if (cli.smoke) {
        cfg.group_size = 256;
        cfg.leaves = 64;
      }
      cfg.alpha = 0.2;
      cfg.protocol.block_size = k;
      cfg.protocol.initial_rho = initial_rho;
      cfg.protocol.num_nack_target = 20;
      cfg.protocol.max_multicast_rounds = 0;
      cfg.messages = kMessages;
      cfg.seed = point_seed(kBaseSeed, points.size());
      points.push_back(cfg);
    }
  }
  const auto runs = run_sweep_grid(points);
  json.add_seeds(points);

  json.header(std::cout, "F15 (left)",
              "#NACKs per message for various k, initial rho=1",
              "N=4096, L=N/4, alpha=20%, numNACK=20, 25 messages");
  emit_trace(json, runs, 0);
  json.header(std::cout, "F15 (right)",
              "#NACKs per message for various k, initial rho=2",
              "same parameters");
  emit_trace(json, runs, std::size(kBlockSizes));
  json.note(std::cout,
            "Shape check: k=1/k=5 series swing hardest (coarse rho "
            "granularity); k>=10 stays closer to the target.");
  return json.write();
}
