// F17 — delivery latency vs block size under adaptive rho (protocol paper
// Fig 17): average #rounds until all users finish (left) and average
// #rounds needed by a single user (right). Both stay flat in k; the
// per-user average sits close to 1.
#include <iostream>

#include "common/table.h"
#include "sweep.h"

using namespace rekey;
using namespace rekey::bench;

int main(int argc, char** argv) {
  const BenchCli cli = parse_bench_cli(argc, argv);
  FigureJson json("F17", cli);

  const std::vector<std::size_t> ks =
      cli.smoke ? std::vector<std::size_t>{1, 10, 50}
                : std::vector<std::size_t>{1, 5, 10, 20, 30, 40, 50};
  const int kMessages = cli.smoke ? 2 : 8;
  constexpr std::uint64_t kBaseSeed = 0xF17;

  std::vector<SweepConfig> points;
  for (const std::size_t k : ks) {
    for (const double alpha : kAlphas) {
      SweepConfig cfg;
      // Adaptive rho with numNACK=20 needs a group comfortably larger than
      // the NACK target to converge inside the round cap.
      if (cli.smoke) {
        cfg.group_size = 1024;
        cfg.leaves = 256;
      }
      cfg.alpha = alpha;
      cfg.protocol.block_size = k;
      cfg.protocol.num_nack_target = 20;
      cfg.protocol.max_multicast_rounds = 0;
      cfg.messages = kMessages;
      cfg.seed = point_seed(kBaseSeed, points.size());
      points.push_back(cfg);
    }
  }
  const auto runs = run_sweep_grid(points);
  json.add_seeds(points);

  Table all_users({"k", "alpha=0", "alpha=20%", "alpha=40%", "alpha=100%"});
  all_users.set_precision(3);
  Table per_user({"k", "alpha=0", "alpha=20%", "alpha=40%", "alpha=100%"});
  per_user.set_precision(4);

  std::size_t point = 0;
  for (const std::size_t k : ks) {
    std::vector<Table::Cell> arow{static_cast<long long>(k)};
    std::vector<Table::Cell> prow{static_cast<long long>(k)};
    for (std::size_t a = 0; a < std::size(kAlphas); ++a) {
      const auto& run = runs[point++];
      arow.push_back(run.mean_rounds_to_all());
      prow.push_back(run.mean_user_rounds());
    }
    all_users.add_row(arow);
    per_user.add_row(prow);
  }

  json.header(std::cout, "F17 (left)",
              "average #rounds for ALL users vs k (adaptive rho)",
              "N=4096, L=N/4, numNACK=20, 8 messages/point");
  json.table(std::cout, all_users);

  json.header(std::cout, "F17 (right)",
              "average #rounds needed by a user vs k",
              "same runs");
  json.table(std::cout, per_user);

  json.note(std::cout,
            "Shape check: both metrics flat in k; per-user average "
            "close to 1.");
  return json.write();
}
