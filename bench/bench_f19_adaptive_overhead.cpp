// F19 — the extra server bandwidth of adaptive proactive FEC versus a
// purely reactive server (rho fixed at 1), per alpha (protocol paper
// Fig 19). Expected: negligible extra cost at alpha=0, < ~0.25 extra at
// alpha=20% for k >= 5, and a small saving at alpha=100% (reactive-only
// needs many more rounds).
#include <iostream>

#include "common/table.h"
#include "sweep.h"

using namespace rekey;
using namespace rekey::bench;

namespace {

SweepConfig make_config(double alpha, std::size_t k, bool adaptive,
                        std::uint64_t seed, const BenchCli& cli) {
  SweepConfig cfg;
  if (cli.smoke) {
    cfg.group_size = 256;
    cfg.leaves = 64;
  }
  cfg.alpha = alpha;
  cfg.protocol.block_size = k;
  cfg.protocol.adaptive_rho = adaptive;
  cfg.protocol.initial_rho = 1.0;
  cfg.protocol.num_nack_target = 20;
  cfg.protocol.max_multicast_rounds = 0;
  cfg.messages = cli.smoke ? 2 : 8;
  cfg.seed = seed;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchCli cli = parse_bench_cli(argc, argv);
  FigureJson json("F19", cli);

  const std::vector<std::size_t> ks =
      cli.smoke ? std::vector<std::size_t>{1, 10, 50}
                : std::vector<std::size_t>{1, 5, 10, 20, 30, 40, 50};
  constexpr std::uint64_t kBaseSeed = 0xF19;
  json.header(
      std::cout, "F19",
      "server bandwidth overhead: adaptive rho vs fixed rho=1, by alpha",
      "N=4096, L=N/4, numNACK=20, 8 messages/point");

  // Adaptive and reactive points share a seed per (k, alpha) pair so the
  // comparison sees the same round-1 loss realization.
  std::vector<SweepConfig> points;
  std::size_t pair = 0;
  for (const std::size_t k : ks) {
    for (const double alpha : {0.0, 0.2, 1.0}) {
      const std::uint64_t seed = point_seed(kBaseSeed, pair++);
      points.push_back(make_config(alpha, k, true, seed, cli));
      points.push_back(make_config(alpha, k, false, seed, cli));
    }
  }
  const auto runs = run_sweep_grid(points);
  json.add_seeds(points);

  Table t({"k", "a=0 adapt", "a=0 rho1", "a=20% adapt", "a=20% rho1",
           "a=100% adapt", "a=100% rho1"});
  t.set_precision(3);
  std::size_t point = 0;
  for (const std::size_t k : ks) {
    std::vector<Table::Cell> row{static_cast<long long>(k)};
    for (int a = 0; a < 3; ++a) {
      row.push_back(runs[point++].mean_bandwidth_overhead());
      row.push_back(runs[point++].mean_bandwidth_overhead());
    }
    t.add_row(row);
  }
  json.table(std::cout, t);
  json.note(std::cout,
            "Shape check: adaptive ~= reactive at alpha=0; small extra "
            "(< ~0.25) at alpha=20% for k >= 5; adaptive can win at "
            "alpha=100%.");
  return json.write();
}
