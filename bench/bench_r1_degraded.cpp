// R1 — degraded-mode transport behavior (robustness extension; not a
// figure from the paper).
//
// Left:  feedback and bandwidth cost vs the network's duplication rate —
//        duplicated datagrams are absorbed by the receiver's shard dedup,
//        so NACKs and rounds should stay flat while delivered copies grow.
// Right: recovery outcome vs outage severity — a blackout window of
//        growing length swallows the head of every message; the transport
//        must degrade through reactive rounds into the unicast phase and,
//        past the unicast deadline, into explicit give-up, never stalling.
#include <iostream>

#include "common/table.h"
#include "sweep.h"

using namespace rekey;
using namespace rekey::bench;

namespace {

// Sums of the degraded-network accounting over a run.
struct FaultTotals {
  long long dup = 0, storm = 0, corrupt = 0, gave_up = 0, unicast = 0;
  long long round1_nacks = 0, total_nacks = 0;
};

FaultTotals totals(const transport::RunMetrics& run) {
  FaultTotals t;
  for (const auto& m : run.messages) {
    t.dup += static_cast<long long>(m.dup_deliveries);
    t.storm += static_cast<long long>(m.storm_nacks);
    t.corrupt += static_cast<long long>(m.corrupt_rejected);
    t.gave_up += static_cast<long long>(m.gave_up_users);
    t.unicast += static_cast<long long>(m.unicast_users);
    t.round1_nacks += static_cast<long long>(m.round1_nacks);
    t.total_nacks += static_cast<long long>(m.total_nacks);
  }
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchCli cli = parse_bench_cli(argc, argv);
  FigureJson json("R1", cli);

  const std::size_t n = cli.smoke ? 128 : 1024;
  const int kMessages = cli.smoke ? 2 : 6;
  constexpr std::uint64_t kBaseSeed = 0xDE64;

  auto base_config = [&](std::size_t point_index) {
    SweepConfig cfg;
    cfg.group_size = n;
    cfg.leaves = n / 4;
    cfg.protocol.block_size = 10;
    cfg.protocol.adaptive_rho = true;
    cfg.protocol.max_multicast_rounds = 3;
    cfg.protocol.unicast_max_waves = 10;
    cfg.messages = kMessages;
    cfg.seed = point_seed(kBaseSeed, point_index);
    return cfg;
  };

  // Left: duplication rate sweep.
  const std::vector<double> dup_rates =
      cli.smoke ? std::vector<double>{0.0, 0.1, 0.4}
                : std::vector<double>{0.0, 0.05, 0.1, 0.2, 0.4};
  std::vector<SweepConfig> points;
  for (const double rate : dup_rates) {
    SweepConfig cfg = base_config(points.size());
    cfg.faults.duplicate_prob = rate;
    cfg.faults.max_duplicates = 2;
    points.push_back(cfg);
  }

  // Right: outage severity sweep — one blackout window from t=0 of length
  // `outage_ms` per run (messages send back to back, so longer windows eat
  // deeper into the run), plus a mild NACK storm to stress the feedback
  // dedup while the network is already degraded.
  // Severities span the regimes: no outage; a window that ends during the
  // unicast phase (recovery shifts into later waves); a window outlasting
  // the whole run (every user explicitly given up).
  const std::vector<double> outages =
      cli.smoke ? std::vector<double>{0.0, 1500.0, 64000.0}
                : std::vector<double>{0.0, 5000.0, 10000.0, 20000.0,
                                      40000.0};
  const std::size_t outage_begin = points.size();
  for (const double outage : outages) {
    SweepConfig cfg = base_config(points.size());
    if (outage > 0.0) cfg.faults.blackouts.push_back({0.0, outage});
    cfg.faults.nack_storm_prob = 0.2;
    cfg.faults.nack_storm_copies = 2;
    points.push_back(cfg);
  }

  const auto runs = run_sweep_grid(points);
  json.add_seeds(points);

  Table dup_table({"dup_rate", "round1_nacks", "total_nacks", "bw_overhead",
                   "user_rounds", "dup_copies"});
  dup_table.set_precision(3);
  for (std::size_t i = 0; i < dup_rates.size(); ++i) {
    const auto& run = runs[i];
    const FaultTotals t = totals(run);
    dup_table.add_row({dup_rates[i], t.round1_nacks, t.total_nacks,
                       run.mean_total_bandwidth_overhead(),
                       run.mean_user_rounds(), t.dup});
  }

  Table outage_table({"outage_ms", "total_nacks", "storm_nacks",
                      "bw_overhead", "unicast_users", "gave_up",
                      "user_rounds"});
  outage_table.set_precision(3);
  for (std::size_t i = 0; i < outages.size(); ++i) {
    const auto& run = runs[outage_begin + i];
    const FaultTotals t = totals(run);
    outage_table.add_row({outages[i], t.total_nacks, t.storm,
                          run.mean_total_bandwidth_overhead(),
                          t.unicast, t.gave_up, run.mean_user_rounds()});
  }

  json.header(std::cout, "R1 (left)",
              "feedback and bandwidth vs duplication rate",
              "N=" + std::to_string(n) + ", L=N/4, k=10, max 2 extra "
              "copies, " + std::to_string(kMessages) + " messages/point");
  json.table(std::cout, dup_table);

  json.header(std::cout, "R1 (right)",
              "recovery outcome vs outage severity",
              "same protocol; one blackout [0, outage_ms) per run, NACK "
              "storm p=0.2 x2, unicast give-up after 10 waves");
  json.table(std::cout, outage_table);

  json.note(std::cout,
            "Shape check: duplication leaves NACKs/rounds nearly flat "
            "(dedup absorbs copies); growing outages push users from "
            "multicast recovery into unicast and finally into explicit "
            "give-up, with bounded rho escalation throughout.");
  return json.write();
}
