// F21 — deadline misses and numNACK adaptation with the unicast phase
// (protocol paper Fig 21): deadline = 2 multicast rounds, initial rho = 1,
// initial numNACK = 200 (deliberately high). Misses drop sharply during
// the first messages as numNACK falls, then a few users keep missing the
// deadline (and are served by unicast).
//
// The bandwidth column uses total_bandwidth_overhead(), which counts the
// USR unicast bytes the multicast-only h'/h metric omits.
#include <iostream>

#include "common/table.h"
#include "sweep.h"

using namespace rekey;
using namespace rekey::bench;

int main(int argc, char** argv) {
  const BenchCli cli = parse_bench_cli(argc, argv);
  FigureJson json("F21", cli);

  constexpr std::uint64_t kBaseSeed = 0xF21;
  json.header(
      std::cout, "F21",
      "#users missing a 2-round deadline and the adapted numNACK",
      "N=4096, L=N/4, k=10, alpha=20%, rho0=1, numNACK0=200, unicast after "
      "2 rounds, 40 messages");

  SweepConfig cfg;
  if (cli.smoke) {
    cfg.group_size = 256;
    cfg.leaves = 64;
  }
  cfg.alpha = 0.2;
  cfg.protocol.initial_rho = 1.0;
  cfg.protocol.num_nack_target = 200;
  cfg.protocol.max_nack = 200;
  cfg.protocol.adapt_num_nack = true;
  cfg.protocol.max_multicast_rounds = 2;
  cfg.protocol.deadline_rounds = 2;
  cfg.messages = cli.smoke ? 8 : 40;
  cfg.seed = point_seed(kBaseSeed, 0);
  const auto run = run_sweep_grid({cfg}).front();
  json.add_seed(cfg.seed);

  Table t({"msg", "missed deadline", "numNACK", "unicast users",
           "USR packets", "total bw overhead"});
  t.set_precision(3);
  for (std::size_t i = 0; i < run.messages.size(); ++i) {
    const auto& m = run.messages[i];
    t.add_row({static_cast<long long>(i),
               static_cast<long long>(m.deadline_misses),
               static_cast<long long>(m.num_nack_target),
               static_cast<long long>(m.unicast_users),
               static_cast<long long>(m.usr_packets),
               m.total_bandwidth_overhead()});
  }
  json.table(std::cout, t);

  json.header(std::cout, "F21 (summary)",
              "mean bandwidth overhead across the run",
              "total = multicast + USR bytes; h'/h = multicast only");
  Table summary({"total bw overhead", "multicast-only h'/h"});
  summary.set_precision(4);
  summary.add_row({run.mean_total_bandwidth_overhead(),
                   run.mean_bandwidth_overhead()});
  json.table(std::cout, summary);

  json.note(std::cout,
            "Shape check: misses collapse within the first few "
            "messages as numNACK falls from 200; a few stragglers "
            "remain and are unicast USR packets.");
  return json.write();
}
