// AB3 (ablation) — interleaved vs sequential send order under burst loss.
//
// The paper (§5.1) interleaves packets across blocks so that two packets
// of the same block are separated by ~num_blocks send slots and rarely
// fall into the same loss burst. This ablation runs the identical
// workload with both orders on the bursty (two-state Markov) links and on
// memoryless links: interleaving should help only when losses are bursty.
#include <iostream>

#include "common/table.h"
#include "sweep.h"

using namespace rekey;
using namespace rekey::bench;

namespace {

double overhead(bool interleave, bool burst, std::uint64_t seed) {
  SweepConfig cfg;
  cfg.alpha = 0.2;
  cfg.burst_loss = burst;
  cfg.protocol.interleave = interleave;
  cfg.protocol.adaptive_rho = false;
  cfg.protocol.initial_rho = 1.0;
  cfg.protocol.max_multicast_rounds = 0;
  // Faster sending makes consecutive packets land within one burst, which
  // is where the send order matters.
  cfg.protocol.send_interval_ms = 10.0;
  cfg.messages = 8;
  cfg.seed = seed;
  return run_sweep(cfg).mean_bandwidth_overhead();
}

}  // namespace

int main() {
  print_figure_header(
      std::cout, "AB3",
      "interleaved vs sequential send order: server bandwidth overhead",
      "N=4096, L=N/4, k=10, rho=1, 100 pkt/s (bursts span packets), "
      "8 messages/point");

  Table t({"loss model", "interleaved", "sequential", "sequential/interleaved"});
  t.set_precision(3);
  for (const bool burst : {true, false}) {
    const double inter = overhead(true, burst, 555);
    const double seq = overhead(false, burst, 555);
    t.add_row({std::string(burst ? "two-state Markov (bursty)"
                                 : "Bernoulli (memoryless)"),
               inter, seq, seq / inter});
  }
  t.print(std::cout);
  std::cout << "\nShape check: sequential order costs noticeably more under "
               "bursty loss and about the same under memoryless loss.\n";
  return 0;
}
