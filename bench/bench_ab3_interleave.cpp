// AB3 (ablation) — interleaved vs sequential send order under burst loss.
//
// The paper (§5.1) interleaves packets across blocks so that two packets
// of the same block are separated by ~num_blocks send slots and rarely
// fall into the same loss burst. This ablation runs the identical
// workload with both orders on the bursty (two-state Markov) links and on
// memoryless links: interleaving should help only when losses are bursty.
#include <iostream>

#include "common/table.h"
#include "sweep.h"

using namespace rekey;
using namespace rekey::bench;

namespace {

SweepConfig make_config(bool interleave, bool burst, std::uint64_t seed,
                        bool smoke) {
  SweepConfig cfg;
  if (smoke) {
    cfg.group_size = 256;
    cfg.leaves = 64;
  }
  cfg.alpha = 0.2;
  cfg.burst_loss = burst;
  cfg.protocol.interleave = interleave;
  cfg.protocol.adaptive_rho = false;
  cfg.protocol.initial_rho = 1.0;
  cfg.protocol.max_multicast_rounds = 0;
  // Faster sending makes consecutive packets land within one burst, which
  // is where the send order matters.
  cfg.protocol.send_interval_ms = 10.0;
  cfg.messages = smoke ? 2 : 8;
  cfg.seed = seed;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchCli cli = parse_bench_cli(argc, argv);
  FigureJson json("AB3", cli);

  constexpr std::uint64_t kBaseSeed = 0xAB3;
  json.header(
      std::cout, "AB3",
      "interleaved vs sequential send order: server bandwidth overhead",
      "N=4096, L=N/4, k=10, rho=1, 100 pkt/s (bursts span packets), "
      "8 messages/point");

  // Both orders share a seed per loss model so they see the same loss
  // realization.
  std::vector<SweepConfig> points;
  std::size_t pair = 0;
  for (const bool burst : {true, false}) {
    const std::uint64_t seed = point_seed(kBaseSeed, pair++);
    points.push_back(make_config(true, burst, seed, cli.smoke));
    points.push_back(make_config(false, burst, seed, cli.smoke));
  }
  const auto runs = run_sweep_grid(points);
  json.add_seeds(points);

  Table t({"loss model", "interleaved", "sequential", "sequential/interleaved"});
  t.set_precision(3);
  std::size_t point = 0;
  for (const bool burst : {true, false}) {
    const double inter = runs[point++].mean_bandwidth_overhead();
    const double seq = runs[point++].mean_bandwidth_overhead();
    t.add_row({std::string(burst ? "two-state Markov (bursty)"
                                 : "Bernoulli (memoryless)"),
               inter, seq, seq / inter});
  }
  json.table(std::cout, t);
  json.note(std::cout,
            "Shape check: sequential order costs noticeably more under "
            "bursty loss and about the same under memoryless loss.");
  return json.write();
}
