// F14 — NACK control for different targets (protocol paper Fig 14):
// round-1 NACK counts per message for numNACK in {0, 5, 10, 40, 100},
// alpha=20%, initial rho 1 (left) and 2 (right). Counts fluctuate around
// each target; fluctuations grow with the target.
#include <iostream>

#include "common/table.h"
#include "sweep.h"

using namespace rekey;
using namespace rekey::bench;

namespace {

constexpr int kTargets[] = {0, 5, 10, 40, 100};

void emit_trace(FigureJson& json, const std::vector<transport::RunMetrics>& runs,
                std::size_t first) {
  Table t({"msg", "numNACK=0", "numNACK=5", "numNACK=10", "numNACK=40",
           "numNACK=100"});
  t.set_precision(0);
  std::vector<std::vector<double>> series;
  for (std::size_t i = 0; i < std::size(kTargets); ++i) {
    std::vector<double> nacks;
    for (const auto& m : runs[first + i].messages)
      nacks.push_back(static_cast<double>(m.round1_nacks));
    series.push_back(std::move(nacks));
  }
  for (std::size_t i = 0; i < series[0].size(); ++i)
    t.add_row({static_cast<long long>(i), series[0][i], series[1][i],
               series[2][i], series[3][i], series[4][i]});
  json.table(std::cout, t);
}

}  // namespace

int main(int argc, char** argv) {
  const BenchCli cli = parse_bench_cli(argc, argv);
  FigureJson json("F14", cli);

  constexpr std::uint64_t kBaseSeed = 0xF14;
  const double initial_rhos[] = {1.0, 2.0};
  const int kMessages = cli.smoke ? 4 : 25;

  std::vector<SweepConfig> points;
  for (const double initial_rho : initial_rhos) {
    for (const int target : kTargets) {
      SweepConfig cfg;
      // numNACK targets up to 100 need a group comfortably larger than the
      // target to converge inside the round cap.
      if (cli.smoke) {
        cfg.group_size = 1024;
        cfg.leaves = 256;
      }
      cfg.alpha = 0.2;
      cfg.protocol.initial_rho = initial_rho;
      cfg.protocol.num_nack_target = target;
      cfg.protocol.max_nack = std::max(target, 100);
      cfg.protocol.max_multicast_rounds = 0;
      cfg.messages = kMessages;
      cfg.seed = point_seed(kBaseSeed, points.size());
      points.push_back(cfg);
    }
  }
  const auto runs = run_sweep_grid(points);
  json.add_seeds(points);

  json.header(std::cout, "F14 (left)",
              "#NACKs per message for various numNACK, rho0=1",
              "N=4096, L=N/4, k=10, alpha=20%, 25 messages");
  emit_trace(json, runs, 0);
  json.header(std::cout, "F14 (right)",
              "#NACKs per message for various numNACK, rho0=2",
              "same parameters");
  emit_trace(json, runs, std::size(kTargets));
  json.note(std::cout,
            "Shape check: each series fluctuates around its target; "
            "bigger targets fluctuate more.");
  return json.write();
}
